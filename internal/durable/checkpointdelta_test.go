package durable

import (
	"bytes"
	"fmt"
	"testing"
	"time"
)

// Delta-journaled checkpoints must survive a reopen byte-for-byte:
// the WAL holds patches, the mirror and replay reconstruct full images.
func TestCheckpointLogDeltaPersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenCheckpointLog(dir, 16, Options{})
	if err != nil {
		t.Fatal(err)
	}
	l.Store().SetDeltaEvery(4)
	state := bytes.Repeat([]byte("flow-entry-"), 200)
	var want [][]byte
	for i := 0; i < 10; i++ {
		st := append([]byte(nil), state...)
		st[i*13] = byte('A' + i)
		state = st
		want = append(want, st)
		l.Store().Put("router", uint64(i+1), st)
	}
	if l.Store().DeltaSaves == 0 {
		t.Fatal("no delta saves recorded — delta mode not active")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := OpenCheckpointLog(dir, 16, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.Restored() != 10 {
		t.Fatalf("restored %d, want 10 (skipped %d)", l2.Restored(), l2.SkippedRecords())
	}
	h := l2.Store().History("router")
	if len(h) != 10 {
		t.Fatalf("history %d, want 10", len(h))
	}
	for i, cp := range h {
		if cp.Delta || !bytes.Equal(cp.State, want[i]) {
			t.Fatalf("restored checkpoint %d does not match (delta=%v)", i, cp.Delta)
		}
	}
	// And the reopened log keeps delta-journaling against restored bases.
	l2.Store().SetDeltaEvery(4)
	next := append([]byte(nil), want[9]...)
	next[5] = 'Z'
	l2.Store().Put("router", 11, next)
	l2.Flush()
	if got := l2.Store().Latest("router"); !bytes.Equal(got.State, next) {
		t.Fatal("post-reopen delta put lost")
	}
}

// Regression (checkpoint resurrection): dropped checkpoints used to
// survive in the mirror and WAL, reappearing after compact + reopen.
func TestCheckpointLogDropCompactReopenStaysDropped(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenCheckpointLog(dir, 8, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		l.Store().Put("doomed", uint64(i+1), []byte(fmt.Sprintf("doomed-%d", i)))
		l.Store().Put("keeper", uint64(i+1), []byte(fmt.Sprintf("keeper-%d", i)))
	}
	l.Store().Drop("doomed")
	l.Flush()
	// Force a compaction: the snapshot must not contain "doomed".
	if err := l.compactForTest(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := OpenCheckpointLog(dir, 8, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if h := l2.Store().History("doomed"); len(h) != 0 {
		t.Fatalf("dropped app resurrected with %d checkpoints", len(h))
	}
	if l2.Store().Latest("doomed") != nil {
		t.Fatal("dropped app has a Latest after reopen")
	}
	if h := l2.Store().History("keeper"); len(h) != 5 {
		t.Fatalf("keeper history %d, want 5", len(h))
	}
}

// A drop journaled but not yet compacted must also hold across reopen
// (the drop record itself erases the history during replay).
func TestCheckpointLogDropRecordReplays(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenCheckpointLog(dir, 8, Options{})
	if err != nil {
		t.Fatal(err)
	}
	l.Store().Put("a", 1, []byte("one"))
	l.Store().Put("a", 2, []byte("two"))
	l.Store().Drop("a")
	l.Store().Put("a", 3, []byte("reborn")) // new history after the drop
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := OpenCheckpointLog(dir, 8, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	h := l2.Store().History("a")
	if len(h) != 1 || string(h[0].State) != "reborn" {
		t.Fatalf("replayed history = %+v, want only the post-drop put", h)
	}
}

// Regression (compaction stall): with the async sink, a compaction in
// the worker must not block a concurrent Put on another app.
func TestCheckpointLogPutNotBlockedDuringCompaction(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenCheckpointLog(dir, 4, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	entered := make(chan struct{})
	release := make(chan struct{})
	var once bool
	l.testCompactHook = func() {
		if !once {
			once = true
			close(entered)
			<-release
		}
	}

	// Enough volume to push past compactAfterSegments and trigger a
	// compaction in the worker.
	go func() {
		for i := 0; i < 64; i++ {
			l.Store().Put("busy", uint64(i+1), bytes.Repeat([]byte{byte(i)}, 64))
		}
	}()
	<-entered

	// Compaction is now held open. A Put on another app must return
	// promptly: it only enqueues.
	done := make(chan struct{})
	go func() {
		l.Store().Put("other", 1, []byte("must not block"))
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		close(release)
		t.Fatal("Put blocked behind an in-flight compaction")
	}
	close(release)
	l.Flush()
	if cp := l.Store().Latest("other"); cp == nil {
		t.Fatal("concurrent put lost")
	}
}

// compactForTest drives one compaction through the worker, preserving
// queue order.
func (l *CheckpointLog) compactForTest() error {
	if l.syncMode {
		return l.compact()
	}
	l.Flush()
	return l.compact()
}

// Sync-mode sink keeps the original semantics: errors surface to the
// store synchronously, histories persist identically.
func TestCheckpointLogSyncMode(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenCheckpointLog(dir, 8, Options{SyncCheckpointSink: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		l.Store().Put("app", uint64(i+1), []byte(fmt.Sprintf("s-%d", i)))
	}
	l.Store().Drop("app")
	l.Store().Put("app", 9, []byte("after"))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := OpenCheckpointLog(dir, 8, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	h := l2.Store().History("app")
	if len(h) != 1 || string(h[0].State) != "after" {
		t.Fatalf("sync-mode replay = %+v", h)
	}
}
