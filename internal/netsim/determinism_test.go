package netsim

import (
	"fmt"
	"strings"
	"testing"
)

// frameTrace renders a host's received frames canonically: the byte
// evidence two simulation runs are compared on.
func frameTrace(h *Host) string {
	var b strings.Builder
	for _, f := range h.Received() {
		fmt.Fprintf(&b, "%v->%v proto=%d tp=%d:%d payload=%q\n",
			f.DlSrc, f.DlDst, f.NwProto, f.TpSrc, f.TpDst, f.Payload)
	}
	return b.String()
}

// runDeterminismWorkload drives one simulation: a linear fabric with a
// lossy middle link, forwarding paths in both directions, and a fixed
// frame mix including flow-table churn mid-stream. Returns the final
// per-switch table fingerprints plus every host's frame trace.
func runDeterminismWorkload(t *testing.T, seed int64) string {
	t.Helper()
	n := Linear(3, nil)
	n.SetLossSeed(seed)
	h1, h3 := n.Host("h1"), n.Host("h3")

	installPath(t, n, h3.MAC, []struct {
		dpid uint64
		out  uint16
	}{{1, 2}, {2, 2}, {3, hostPortBase}})
	installPath(t, n, h1.MAC, []struct {
		dpid uint64
		out  uint16
	}{{3, 1}, {2, 1}, {1, hostPortBase}})

	// The middle links are lossy, so which frames survive depends only
	// on the seeded loss stream.
	if err := n.SetLinkProfile(1, 2, 2, 1, 0, 0.4); err != nil {
		t.Fatal(err)
	}
	if err := n.SetLinkProfile(2, 2, 3, 1, 0, 0.4); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 60; i++ {
		if err := n.SendFromHost("h1", TCPFrame(h1, h3, uint16(1000+i), 80, []byte{byte(i)})); err != nil {
			t.Fatal(err)
		}
		if i%3 == 0 {
			if err := n.SendFromHost("h3", TCPFrame(h3, h1, uint16(2000+i), 443, nil)); err != nil {
				t.Fatal(err)
			}
		}
		if i == 30 {
			// Mid-stream table churn: reroute one direction through the
			// same ports (a no-op path change that still rewrites flow
			// entries), so final fingerprints depend on apply order.
			installPath(t, n, h3.MAC, []struct {
				dpid uint64
				out  uint16
			}{{1, 2}, {2, 2}, {3, hostPortBase}})
		}
	}

	var b strings.Builder
	for _, sw := range n.Switches() {
		fmt.Fprintf(&b, "dpid=%d table=%s\n", sw.DPID, sw.Table().Fingerprint())
	}
	for _, name := range []string{"h1", "h2", "h3"} {
		if h := n.Host(name); h != nil {
			fmt.Fprintf(&b, "host=%s frames:\n%s", name, frameTrace(h))
		}
	}
	fmt.Fprintf(&b, "lossDrops=%d\n", n.LossDrops.Load())
	return b.String()
}

// Same topology, same seed, same event sequence: final flow tables and
// per-host frame traces must be identical, byte for byte. This is the
// property the chaos harness's replay-from-seed story stands on.
func TestNetworkDeterministicReplay(t *testing.T) {
	a := runDeterminismWorkload(t, 42)
	b := runDeterminismWorkload(t, 42)
	if a != b {
		t.Fatalf("same seed diverged:\n--- run 1 ---\n%s--- run 2 ---\n%s", a, b)
	}
}

// A different loss seed must change which frames survive the lossy
// links (otherwise the seed is dead and the test above is vacuous).
func TestNetworkSeedChangesOutcome(t *testing.T) {
	a := runDeterminismWorkload(t, 1)
	b := runDeterminismWorkload(t, 2)
	if a == b {
		t.Fatal("seeds 1 and 2 produced identical traces at 40% loss")
	}
}
