package netsim

import (
	"fmt"
	"math/rand"

	"legosdn/internal/openflow"
)

// HostMAC derives the deterministic MAC the topology builders assign to
// host index i (1-based).
func HostMAC(i int) openflow.EthAddr {
	return openflow.EthAddr{0x0a, 0, 0, 0, byte(i >> 8), byte(i)}
}

// HostIP derives the deterministic 10.0.x.y address for host index i.
func HostIP(i int) uint32 {
	return 0x0a000000 | uint32(i&0xffff)
}

// hostPortBase is the first port number used for host attachments, so
// inter-switch ports (1..hostPortBase-1) never collide with host ports.
const hostPortBase = 100

func addHostN(n *Network, i int, dpid uint64, port uint16) *Host {
	h, err := n.AddHost(fmt.Sprintf("h%d", i), HostMAC(i), HostIP(i), dpid, port)
	if err != nil {
		panic(err) // topology builders use fresh networks; collision is a bug
	}
	return h
}

// Linear builds a chain s1-s2-...-sn with one host per switch.
// Inter-switch links use ports 1 (left) and 2 (right); hosts attach at
// port 100.
func Linear(n int, clock Clock) *Network {
	net := NewNetwork(clock)
	for i := 1; i <= n; i++ {
		net.AddSwitch(uint64(i))
	}
	for i := 1; i < n; i++ {
		if err := net.AddLink(uint64(i), 2, uint64(i+1), 1); err != nil {
			panic(err)
		}
	}
	for i := 1; i <= n; i++ {
		addHostN(net, i, uint64(i), hostPortBase)
	}
	return net
}

// Single builds one switch with n directly attached hosts — the classic
// learning-switch playground.
func Single(n int, clock Clock) *Network {
	net := NewNetwork(clock)
	net.AddSwitch(1)
	for i := 1; i <= n; i++ {
		addHostN(net, i, 1, hostPortBase+uint16(i)-1)
	}
	return net
}

// Tree builds a complete tree of the given depth and fanout with hosts
// at the leaves. Root is dpid 1; children of switch d occupy the next
// dpids breadth-first.
func Tree(depth, fanout int, clock Clock) *Network {
	net := NewNetwork(clock)
	next := uint64(1)
	net.AddSwitch(next)
	level := []uint64{next}
	for d := 1; d < depth; d++ {
		var nextLevel []uint64
		for _, parent := range level {
			for c := 0; c < fanout; c++ {
				next++
				net.AddSwitch(next)
				// Parent downlink ports start at 2; child uplink is port 1.
				if err := net.AddLink(parent, uint16(2+c), next, 1); err != nil {
					panic(err)
				}
				nextLevel = append(nextLevel, next)
			}
		}
		level = nextLevel
	}
	hostIdx := 1
	for _, leaf := range level {
		for c := 0; c < fanout; c++ {
			addHostN(net, hostIdx, leaf, hostPortBase+uint16(c))
			hostIdx++
		}
	}
	return net
}

// Ring builds a cycle s1-s2-...-sn-s1 with one host per switch. Rings
// give the invariant checkers genuine loops to find.
func Ring(n int, clock Clock) *Network {
	if n < 3 {
		panic("netsim: ring needs at least 3 switches")
	}
	net := NewNetwork(clock)
	for i := 1; i <= n; i++ {
		net.AddSwitch(uint64(i))
	}
	for i := 1; i <= n; i++ {
		next := i%n + 1
		if err := net.AddLink(uint64(i), 2, uint64(next), 1); err != nil {
			panic(err)
		}
	}
	for i := 1; i <= n; i++ {
		addHostN(net, i, uint64(i), hostPortBase)
	}
	return net
}

// FatTree builds a k-ary fat-tree (k even): (k/2)^2 core switches, k
// pods of k/2 aggregation and k/2 edge switches, and k/2 hosts per edge
// switch — the canonical datacenter topology from the SDN literature.
func FatTree(k int, clock Clock) *Network {
	if k < 2 || k%2 != 0 {
		panic("netsim: fat-tree arity must be even and >= 2")
	}
	net := NewNetwork(clock)
	half := k / 2
	core := make([]uint64, half*half)
	next := uint64(1)
	for i := range core {
		core[i] = next
		net.AddSwitch(next)
		next++
	}
	hostIdx := 1
	for pod := 0; pod < k; pod++ {
		aggs := make([]uint64, half)
		edges := make([]uint64, half)
		for i := 0; i < half; i++ {
			aggs[i] = next
			net.AddSwitch(next)
			next++
		}
		for i := 0; i < half; i++ {
			edges[i] = next
			net.AddSwitch(next)
			next++
		}
		// Aggregation i connects to core switches [i*half, (i+1)*half).
		for i, agg := range aggs {
			for j := 0; j < half; j++ {
				c := core[i*half+j]
				// Core downlink port per pod; agg uplink ports 1..half.
				if err := net.AddLink(c, uint16(1+pod), agg, uint16(1+j)); err != nil {
					panic(err)
				}
			}
		}
		// Every aggregation connects to every edge in the pod.
		for i, agg := range aggs {
			for j, edge := range edges {
				if err := net.AddLink(agg, uint16(1+half+j), edge, uint16(1+i)); err != nil {
					panic(err)
				}
			}
		}
		for _, edge := range edges {
			for hp := 0; hp < half; hp++ {
				addHostN(net, hostIdx, edge, hostPortBase+uint16(hp))
				hostIdx++
			}
		}
	}
	return net
}

// Clos2Tier builds a two-tier leaf-spine Clos fabric: every leaf
// connects to every spine, hosts attach only to leaves. With a handful
// of spines this scales to clusters of ten thousand switches while
// keeping the link count linear in the leaf count — the shape the
// data-plane scaling experiments sweep. Spines take dpids 1..spines;
// leaves follow. Leaf uplink to spine s uses port s; spine downlink to
// leaf j uses port j.
func Clos2Tier(spines, leaves, hostsPerLeaf int, clock Clock) *Network {
	if spines < 1 || leaves < 1 || hostsPerLeaf < 0 {
		panic("netsim: clos needs at least one spine and one leaf")
	}
	if spines >= hostPortBase {
		panic("netsim: clos spine count would collide with host ports")
	}
	if leaves*hostsPerLeaf > 0xffff {
		panic("netsim: clos host count exceeds the 10.0.x.y address space")
	}
	net := NewNetwork(clock)
	for s := 1; s <= spines; s++ {
		net.AddSwitch(uint64(s))
	}
	hostIdx := 1
	for j := 1; j <= leaves; j++ {
		leaf := uint64(spines + j)
		net.AddSwitch(leaf)
		for s := 1; s <= spines; s++ {
			if err := net.AddLink(uint64(s), uint16(j), leaf, uint16(s)); err != nil {
				panic(err)
			}
		}
		for hp := 0; hp < hostsPerLeaf; hp++ {
			addHostN(net, hostIdx, leaf, hostPortBase+uint16(hp))
			hostIdx++
		}
	}
	return net
}

// Random builds a connected random topology: a spanning tree over n
// switches plus extra random links, one host per switch. The same seed
// yields the same graph.
func Random(n int, extraLinks int, seed int64, clock Clock) *Network {
	net := NewNetwork(clock)
	r := rand.New(rand.NewSource(seed))
	for i := 1; i <= n; i++ {
		net.AddSwitch(uint64(i))
	}
	nextPort := make(map[uint64]uint16)
	port := func(d uint64) uint16 {
		nextPort[d]++
		return nextPort[d]
	}
	for i := 2; i <= n; i++ {
		parent := uint64(r.Intn(i-1) + 1)
		if err := net.AddLink(parent, port(parent), uint64(i), port(uint64(i))); err != nil {
			panic(err)
		}
	}
	for e := 0; e < extraLinks; e++ {
		a := uint64(r.Intn(n) + 1)
		b := uint64(r.Intn(n) + 1)
		if a == b {
			continue
		}
		// Port collisions are impossible: ports are allocated fresh.
		if err := net.AddLink(a, port(a), b, port(b)); err != nil {
			panic(err)
		}
	}
	for i := 1; i <= n; i++ {
		addHostN(net, i, uint64(i), hostPortBase)
	}
	return net
}

// TCPFrame builds a TCP frame between two hosts, a convenience for
// traffic generators and tests.
func TCPFrame(src, dst *Host, sport, dport uint16, payload []byte) *Frame {
	return &Frame{
		DlSrc:   src.MAC,
		DlDst:   dst.MAC,
		DlType:  EtherTypeIPv4,
		NwProto: IPProtoTCP,
		NwSrc:   src.IP,
		NwDst:   dst.IP,
		TpSrc:   sport,
		TpDst:   dport,
		Payload: payload,
	}
}

// ARPFrame builds a broadcast ARP request from src looking for targetIP.
func ARPFrame(src *Host, targetIP uint32) *Frame {
	return &Frame{
		DlSrc:   src.MAC,
		DlDst:   openflow.EthAddr{0xff, 0xff, 0xff, 0xff, 0xff, 0xff},
		DlType:  EtherTypeARP,
		NwProto: 1, // ARP request opcode
		NwSrc:   src.IP,
		NwDst:   targetIP,
	}
}
