package netsim

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"legosdn/internal/openflow"
)

func TestFrameRoundTripTCP(t *testing.T) {
	f := &Frame{
		DlSrc:   openflow.EthAddr{1, 2, 3, 4, 5, 6},
		DlDst:   openflow.EthAddr{6, 5, 4, 3, 2, 1},
		DlType:  EtherTypeIPv4,
		NwSrc:   0x0a000001,
		NwDst:   0x0a000002,
		NwTos:   0x10,
		NwProto: IPProtoTCP,
		TpSrc:   12345,
		TpDst:   80,
		Payload: []byte("GET /"),
	}
	got, err := ParseFrame(f.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, f) {
		t.Fatalf("round trip mismatch\n got %+v\nwant %+v", got, f)
	}
}

func TestFrameRoundTripVlan(t *testing.T) {
	f := &Frame{
		DlSrc:     openflow.EthAddr{1, 0, 0, 0, 0, 1},
		DlDst:     openflow.EthAddr{1, 0, 0, 0, 0, 2},
		DlVlan:    42,
		DlVlanPcp: 3,
		DlType:    EtherTypeIPv4,
		NwSrc:     1,
		NwDst:     2,
		NwProto:   IPProtoICMP,
		Payload:   []byte{0xde},
	}
	got, err := ParseFrame(f.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, f) {
		t.Fatalf("vlan round trip mismatch\n got %+v\nwant %+v", got, f)
	}
}

func TestFrameRoundTripARP(t *testing.T) {
	f := &Frame{
		DlSrc:   openflow.EthAddr{1, 0, 0, 0, 0, 1},
		DlDst:   openflow.EthAddr{0xff, 0xff, 0xff, 0xff, 0xff, 0xff},
		DlType:  EtherTypeARP,
		NwProto: 1,
		NwSrc:   0x0a000001,
		NwDst:   0x0a000002,
	}
	got, err := ParseFrame(f.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, f) {
		t.Fatalf("arp round trip mismatch\n got %+v\nwant %+v", got, f)
	}
}

func TestParseFrameErrors(t *testing.T) {
	if _, err := ParseFrame([]byte{1, 2, 3}); err == nil {
		t.Error("short frame should fail")
	}
	// Valid ethernet header claiming IPv4 but truncated.
	b := make([]byte, 14)
	b[12], b[13] = 0x08, 0x00
	if _, err := ParseFrame(b); err == nil {
		t.Error("truncated ipv4 should fail")
	}
	// VLAN tag truncated.
	b2 := make([]byte, 15)
	b2[12], b2[13] = 0x81, 0x00
	if _, err := ParseFrame(b2); err == nil {
		t.Error("truncated vlan should fail")
	}
}

// Property: Marshal/ParseFrame is the identity for generated traffic.
func TestQuickFrameRoundTrip(t *testing.T) {
	protos := []uint8{IPProtoICMP, IPProtoTCP, IPProtoUDP}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		fr := &Frame{
			DlType:  EtherTypeIPv4,
			NwSrc:   r.Uint32(),
			NwDst:   r.Uint32(),
			NwTos:   uint8(r.Uint32()),
			NwProto: protos[r.Intn(len(protos))],
			Payload: make([]byte, r.Intn(100)),
		}
		r.Read(fr.DlSrc[:])
		r.Read(fr.DlDst[:])
		r.Read(fr.Payload)
		if len(fr.Payload) == 0 {
			fr.Payload = nil
		}
		if fr.NwProto == IPProtoTCP || fr.NwProto == IPProtoUDP {
			fr.TpSrc = uint16(r.Uint32())
			fr.TpDst = uint16(r.Uint32())
		}
		if r.Intn(2) == 0 {
			fr.DlVlan = uint16(r.Intn(4095) + 1)
			fr.DlVlanPcp = uint8(r.Intn(8))
		}
		got, err := ParseFrame(fr.Marshal())
		if err != nil {
			return false
		}
		if len(got.Payload) == 0 {
			got.Payload = nil
		}
		return reflect.DeepEqual(got, fr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestApplyActionsRewrites(t *testing.T) {
	f := &Frame{DlType: EtherTypeIPv4, NwProto: IPProtoTCP, NwSrc: 1, NwDst: 2, TpDst: 80}
	out, ports := ApplyActions(f, []openflow.Action{
		&openflow.ActionSetNwDst{Addr: 99},
		&openflow.ActionSetTpDst{Port: 8080},
		&openflow.ActionSetDlDst{Addr: openflow.EthAddr{9, 9, 9, 9, 9, 9}},
		&openflow.ActionOutput{Port: 3},
		&openflow.ActionEnqueue{Port: 4, QueueID: 1},
	})
	if out.NwDst != 99 || out.TpDst != 8080 || (out.DlDst != openflow.EthAddr{9, 9, 9, 9, 9, 9}) {
		t.Errorf("rewrites not applied: %+v", out)
	}
	if len(ports) != 2 || ports[0] != 3 || ports[1] != 4 {
		t.Errorf("ports = %v, want [3 4]", ports)
	}
	// Input must be untouched.
	if f.NwDst != 2 || f.TpDst != 80 {
		t.Error("ApplyActions mutated its input")
	}
}

func TestApplyActionsVlan(t *testing.T) {
	f := &Frame{DlVlan: 5, DlVlanPcp: 2, DlType: EtherTypeIPv4}
	out, _ := ApplyActions(f, []openflow.Action{&openflow.ActionStripVlan{}})
	if out.DlVlan != 0 || out.DlVlanPcp != 0 {
		t.Error("strip vlan failed")
	}
	out2, _ := ApplyActions(f, []openflow.Action{
		&openflow.ActionSetVlanVID{VlanVID: 7},
		&openflow.ActionSetVlanPCP{VlanPCP: 6},
	})
	if out2.DlVlan != 7 || out2.DlVlanPcp != 6 {
		t.Error("set vlan failed")
	}
}

func TestFrameFields(t *testing.T) {
	f := &Frame{DlType: EtherTypeIPv4, NwProto: IPProtoUDP, TpSrc: 53}
	p := f.Fields(9)
	if p.InPort != 9 || p.DlType != EtherTypeIPv4 || p.TpSrc != 53 {
		t.Errorf("fields projection wrong: %+v", p)
	}
}
