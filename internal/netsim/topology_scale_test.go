package netsim

import (
	"testing"

	"legosdn/internal/metrics"
	"legosdn/internal/openflow"
)

func TestClos2TierWiring(t *testing.T) {
	const spines, leaves, hostsPerLeaf = 4, 6, 2
	n := Clos2Tier(spines, leaves, hostsPerLeaf, nil)

	// Every leaf reaches every spine over the documented port plan.
	for j := 1; j <= leaves; j++ {
		leaf := uint64(spines + j)
		for s := 1; s <= spines; s++ {
			kind, peer, port, _ := n.Peer(leaf, uint16(s))
			if kind != PeerSwitch || peer != uint64(s) || port != uint16(j) {
				t.Fatalf("leaf %d port %d: got kind=%v peer=%d port=%d", leaf, s, kind, peer, port)
			}
		}
	}
	// Spines carry no hosts; leaves carry hostsPerLeaf each.
	for _, h := range n.Hosts() {
		if h.attach.dpid <= spines {
			t.Fatalf("host %s attached to spine %d", h.Name, h.attach.dpid)
		}
	}
	if got := len(n.Hosts()); got != leaves*hostsPerLeaf {
		t.Fatalf("hosts = %d, want %d", got, leaves*hostsPerLeaf)
	}
}

// TestClos2TierBuildsLarge exercises the scaling claim directly: a
// fabric in the thousands of switches builds in-process without
// quadratic blowup (links are spines×leaves, not leaves²).
func TestClos2TierBuildsLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("large topology build")
	}
	const spines, leaves = 8, 1992 // 2000 switches
	n := Clos2Tier(spines, leaves, 0, nil)
	if got := len(n.Switches()); got != spines+leaves {
		t.Fatalf("switches = %d, want %d", got, spines+leaves)
	}
	if got := len(n.links); got != spines*leaves {
		t.Fatalf("links = %d, want %d", got, spines*leaves)
	}
}

func TestInstrumentFlowTables(t *testing.T) {
	n := Single(2, nil)
	h := metrics.NewHistogram(LookupDepthBuckets)
	n.InstrumentFlowTables(h)

	sw := n.Switch(1)
	m := openflow.MatchAll()
	sw.Table().Apply(&openflow.FlowMod{
		Match: m, Command: openflow.FlowModAdd, Priority: 1,
		BufferID: openflow.BufferIDNone, OutPort: openflow.PortNone,
		Actions: []openflow.Action{&openflow.ActionOutput{Port: openflow.PortFlood}},
	})
	h1, h2 := n.Host("h1"), n.Host("h2")
	n.SendFromHost("h1", TCPFrame(h1, h2, 1000, 80, nil))
	if c := h.Snapshot().Count; c == 0 {
		t.Fatal("no lookup depths observed after dataplane traffic")
	}
	// Switches added after instrumentation report into the same histogram.
	before := h.Snapshot().Count
	s2 := n.AddSwitch(99)
	s2.Table().Lookup(openflow.PacketFields{InPort: 1}, 64)
	if c := h.Snapshot().Count; c != before+1 {
		t.Fatalf("late-added switch not instrumented: count %d, want %d", c, before+1)
	}
	// Detach stops observation.
	n.InstrumentFlowTables(nil)
	s2.Table().Lookup(openflow.PacketFields{InPort: 1}, 64)
	if c := h.Snapshot().Count; c != before+1 {
		t.Fatal("detached histogram still observing")
	}
}
