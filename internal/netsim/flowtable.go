package netsim

import "legosdn/internal/flowtable"

// The flow-table machinery lives in package flowtable so NetLog's
// shadow tables share the switch implementation; these aliases keep the
// simulator's API surface self-contained.

// Clock abstracts time for deterministic tests; see flowtable.Clock.
type Clock = flowtable.Clock

// RealClock reads the system clock.
type RealClock = flowtable.RealClock

// FakeClock is a manually advanced clock for tests.
type FakeClock = flowtable.FakeClock

// NewFakeClock returns a fake clock starting at start.
var NewFakeClock = flowtable.NewFakeClock

// FlowTable is one switch's flow table.
type FlowTable = flowtable.Table

// NewFlowTable returns an empty table (RealClock if clock is nil).
func NewFlowTable(clock Clock) *FlowTable { return flowtable.New(clock) }

// FlowEntry is one installed rule.
type FlowEntry = flowtable.Entry

// Removed pairs an evicted entry with its removal reason.
type Removed = flowtable.Removed

// Table-capacity and overlap errors, re-exported for callers matching
// on error identity.
var (
	ErrTableFull = flowtable.ErrTableFull
	ErrOverlap   = flowtable.ErrOverlap
)
