package netsim

import (
	"testing"
	"time"

	"legosdn/internal/openflow"
)

// attachTestController wires a switch to an in-memory controller side
// and returns a channel of asynchronous messages plus a request func
// for synchronous exchanges.
func attachTestController(t *testing.T, sw *Switch) (async <-chan openflow.Message, send func(openflow.Message)) {
	t.Helper()
	ctrl, swConn := openflow.Pipe()
	ch := make(chan openflow.Message, 256)
	go func() {
		for {
			m, err := ctrl.ReadMessage()
			if err != nil {
				close(ch)
				return
			}
			ch <- m
		}
	}()
	if err := sw.Attach(swConn); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ctrl.Close() })
	// Consume the switch's Hello.
	select {
	case m := <-ch:
		if m.Type() != openflow.TypeHello {
			t.Fatalf("first message = %v, want HELLO", m.Type())
		}
	case <-time.After(time.Second):
		t.Fatal("no hello from switch")
	}
	return ch, func(m openflow.Message) {
		if err := ctrl.WriteMessage(m); err != nil {
			t.Fatalf("controller write: %v", err)
		}
	}
}

func wait(t *testing.T, ch <-chan openflow.Message, want openflow.Type) openflow.Message {
	t.Helper()
	deadline := time.After(2 * time.Second)
	for {
		select {
		case m, ok := <-ch:
			if !ok {
				t.Fatalf("channel closed waiting for %v", want)
			}
			if m.Type() == want {
				return m
			}
		case <-deadline:
			t.Fatalf("timeout waiting for %v", want)
		}
	}
}

func TestSwitchHandshake(t *testing.T) {
	n := NewNetwork(nil)
	sw := n.AddSwitch(42)
	sw.addPort(1)
	sw.addPort(2)
	ch, send := attachTestController(t, sw)
	send(&openflow.Hello{})
	send(&openflow.FeaturesRequest{BaseMsg: openflow.BaseMsg{Xid: 5}})
	fr := wait(t, ch, openflow.TypeFeaturesReply).(*openflow.FeaturesReply)
	if fr.DatapathID != 42 || fr.Xid != 5 {
		t.Fatalf("features reply dpid=%d xid=%d", fr.DatapathID, fr.Xid)
	}
	if len(fr.Ports) != 2 {
		t.Fatalf("ports = %d, want 2", len(fr.Ports))
	}
}

func TestSwitchEchoAndBarrier(t *testing.T) {
	n := NewNetwork(nil)
	sw := n.AddSwitch(1)
	ch, send := attachTestController(t, sw)
	send(&openflow.EchoRequest{BaseMsg: openflow.BaseMsg{Xid: 9}, Data: []byte("hb")})
	er := wait(t, ch, openflow.TypeEchoReply).(*openflow.EchoReply)
	if er.Xid != 9 || string(er.Data) != "hb" {
		t.Fatalf("echo reply %+v", er)
	}
	send(&openflow.BarrierRequest{BaseMsg: openflow.BaseMsg{Xid: 10}})
	br := wait(t, ch, openflow.TypeBarrierReply)
	if br.GetXid() != 10 {
		t.Fatal("barrier xid mismatch")
	}
}

func TestSwitchPacketInOnMiss(t *testing.T) {
	n := Single(2, nil)
	sw := n.Switch(1)
	ch, send := attachTestController(t, sw)
	send(&openflow.Hello{})

	h1, h2 := n.Host("h1"), n.Host("h2")
	if err := n.SendFromHost("h1", TCPFrame(h1, h2, 1000, 80, []byte("x"))); err != nil {
		t.Fatal(err)
	}
	pin := wait(t, ch, openflow.TypePacketIn).(*openflow.PacketIn)
	if pin.InPort != hostPortBase {
		t.Fatalf("in_port = %d, want %d", pin.InPort, hostPortBase)
	}
	f, err := ParseFrame(pin.Data)
	if err != nil {
		t.Fatal(err)
	}
	if f.DlSrc != h1.MAC || f.DlDst != h2.MAC {
		t.Fatal("packet-in carries wrong frame")
	}
	if pin.Reason != openflow.PacketInReasonNoMatch {
		t.Fatal("wrong reason")
	}
}

func TestSwitchFlowModThenForward(t *testing.T) {
	n := Single(2, nil)
	sw := n.Switch(1)
	_, send := attachTestController(t, sw)

	h1, h2 := n.Host("h1"), n.Host("h2")
	m := openflow.MatchAll()
	m.Wildcards &^= openflow.WildcardDlDst
	m.DlDst = h2.MAC
	send(&openflow.FlowMod{
		Match: m, Command: openflow.FlowModAdd, Priority: 10,
		BufferID: openflow.BufferIDNone, OutPort: openflow.PortNone,
		Actions: []openflow.Action{&openflow.ActionOutput{Port: hostPortBase + 1}},
	})
	send(&openflow.BarrierRequest{}) // flush
	waitForTable(t, sw, 1)

	n.SendFromHost("h1", TCPFrame(h1, h2, 1, 2, nil))
	waitForDelivery(t, h2, 1)
	got := h2.Received()[0]
	if got.DlSrc != h1.MAC {
		t.Fatal("delivered frame corrupted")
	}
}

func waitForTable(t *testing.T, sw *Switch, n int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for sw.Table().Len() < n {
		if time.Now().After(deadline) {
			t.Fatalf("table never reached %d entries", n)
		}
		time.Sleep(time.Millisecond)
	}
}

func waitForDelivery(t *testing.T, h *Host, n int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for h.ReceivedCount() < n {
		if time.Now().After(deadline) {
			t.Fatalf("host %s never received %d frames (got %d)", h.Name, n, h.ReceivedCount())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSwitchPacketOutFlood(t *testing.T) {
	n := Single(3, nil)
	sw := n.Switch(1)
	_, send := attachTestController(t, sw)

	h1, h2 := n.Host("h1"), n.Host("h2")
	frame := TCPFrame(h1, h2, 5, 6, nil)
	send(&openflow.PacketOut{
		BufferID: openflow.BufferIDNone,
		InPort:   hostPortBase, // h1's port: excluded from flood
		Actions:  []openflow.Action{&openflow.ActionOutput{Port: openflow.PortFlood}},
		Data:     frame.Marshal(),
	})
	waitForDelivery(t, h2, 1)
	// h1 (the in-port) and h3 (wrong MAC) must not receive it.
	if h1.ReceivedCount() != 0 {
		t.Error("flood went back out the in-port")
	}
	if got := n.Host("h3").ReceivedCount(); got != 0 {
		t.Errorf("h3 accepted frame not addressed to it: %d", got)
	}
	_ = sw
}

func TestSwitchBufferedPacketOut(t *testing.T) {
	n := Single(2, nil)
	sw := n.Switch(1)
	ch, send := attachTestController(t, sw)

	h1, h2 := n.Host("h1"), n.Host("h2")
	n.SendFromHost("h1", TCPFrame(h1, h2, 1, 2, []byte("buffered")))
	pin := wait(t, ch, openflow.TypePacketIn).(*openflow.PacketIn)
	if pin.BufferID == openflow.BufferIDNone {
		t.Fatal("expected a buffered packet-in")
	}
	send(&openflow.PacketOut{
		BufferID: pin.BufferID,
		InPort:   openflow.PortNone,
		Actions:  []openflow.Action{&openflow.ActionOutput{Port: hostPortBase + 1}},
	})
	waitForDelivery(t, h2, 1)
	if string(h2.Received()[0].Payload) != "buffered" {
		t.Fatal("buffered payload lost")
	}
	// Reusing a consumed buffer id must produce an error message.
	send(&openflow.PacketOut{
		BufferID: pin.BufferID,
		InPort:   openflow.PortNone,
		Actions:  []openflow.Action{&openflow.ActionOutput{Port: hostPortBase + 1}},
	})
	em := wait(t, ch, openflow.TypeError).(*openflow.ErrorMsg)
	if em.ErrType != openflow.ErrTypeBadRequest {
		t.Fatalf("error type = %v", em.ErrType)
	}
	_ = sw
}

func TestSwitchFlowRemovedNotification(t *testing.T) {
	clk := NewFakeClock(time.Unix(0, 0))
	n := NewNetwork(clk)
	sw := n.AddSwitch(1)
	sw.addPort(1)
	ch, send := attachTestController(t, sw)

	send(&openflow.FlowMod{
		Match: exactMatch(1), Command: openflow.FlowModAdd, Priority: 5,
		IdleTimeout: 1, Flags: openflow.FlowModFlagSendFlowRem,
		BufferID: openflow.BufferIDNone, OutPort: openflow.PortNone,
	})
	send(&openflow.BarrierRequest{})
	wait(t, ch, openflow.TypeBarrierReply)

	clk.Advance(2 * time.Second)
	n.Tick()
	fr := wait(t, ch, openflow.TypeFlowRemoved).(*openflow.FlowRemoved)
	if fr.Reason != openflow.FlowRemovedIdleTimeout {
		t.Fatalf("reason = %v", fr.Reason)
	}
	if fr.DurationSec != 2 {
		t.Fatalf("duration = %d, want 2", fr.DurationSec)
	}
}

func TestSwitchFlowModErrorReply(t *testing.T) {
	n := NewNetwork(nil)
	sw := n.AddSwitch(1)
	sw.Table().SetMaxSize(1)
	ch, send := attachTestController(t, sw)
	send(&openflow.FlowMod{Match: exactMatch(1), Command: openflow.FlowModAdd,
		BufferID: openflow.BufferIDNone, OutPort: openflow.PortNone})
	send(&openflow.FlowMod{Match: exactMatch(2), Command: openflow.FlowModAdd,
		BufferID: openflow.BufferIDNone, OutPort: openflow.PortNone})
	em := wait(t, ch, openflow.TypeError).(*openflow.ErrorMsg)
	if em.ErrType != openflow.ErrTypeFlowModFailed || em.Code != openflow.FlowModFailedAllTablesFull {
		t.Fatalf("error %+v", em)
	}
}

func TestSwitchStatsReplies(t *testing.T) {
	n := Single(2, nil)
	sw := n.Switch(1)
	ch, send := attachTestController(t, sw)

	send(&openflow.FlowMod{Match: exactMatch(hostPortBase), Command: openflow.FlowModAdd, Priority: 4,
		BufferID: openflow.BufferIDNone, OutPort: openflow.PortNone,
		Actions: []openflow.Action{&openflow.ActionOutput{Port: hostPortBase + 1}}})
	send(&openflow.BarrierRequest{})
	wait(t, ch, openflow.TypeBarrierReply)

	h1, h2 := n.Host("h1"), n.Host("h2")
	n.SendFromHost("h1", TCPFrame(h1, h2, 1, 2, []byte("abc")))
	waitForDelivery(t, h2, 1)

	send(&openflow.StatsRequest{BaseMsg: openflow.BaseMsg{Xid: 3}, StatsType: openflow.StatsTypeFlow})
	sr := wait(t, ch, openflow.TypeStatsReply).(*openflow.StatsReply)
	if len(sr.Flows) != 1 || sr.Flows[0].PacketCount != 1 {
		t.Fatalf("flow stats %+v", sr.Flows)
	}

	send(&openflow.StatsRequest{StatsType: openflow.StatsTypeAggregate})
	ar := wait(t, ch, openflow.TypeStatsReply).(*openflow.StatsReply)
	if ar.Aggregate == nil || ar.Aggregate.FlowCount != 1 {
		t.Fatalf("aggregate %+v", ar.Aggregate)
	}

	send(&openflow.StatsRequest{StatsType: openflow.StatsTypePort})
	pr := wait(t, ch, openflow.TypeStatsReply).(*openflow.StatsReply)
	if len(pr.Ports) != 2 {
		t.Fatalf("port stats count = %d", len(pr.Ports))
	}
	var sawTraffic bool
	for _, p := range pr.Ports {
		if p.RxPackets > 0 || p.TxPackets > 0 {
			sawTraffic = true
		}
	}
	if !sawTraffic {
		t.Fatal("port counters never moved")
	}
}

func TestSwitchPortMod(t *testing.T) {
	n := Single(2, nil)
	sw := n.Switch(1)
	ch, send := attachTestController(t, sw)
	send(&openflow.PortMod{
		PortNo: hostPortBase + 1,
		Config: openflow.PortConfigDown,
		Mask:   openflow.PortConfigDown,
	})
	ps := wait(t, ch, openflow.TypePortStatus).(*openflow.PortStatus)
	if ps.Desc.Config&openflow.PortConfigDown == 0 {
		t.Fatal("port config not applied")
	}
	// Traffic to the downed port is dropped.
	send(&openflow.FlowMod{Match: openflow.MatchAll(), Command: openflow.FlowModAdd,
		BufferID: openflow.BufferIDNone, OutPort: openflow.PortNone,
		Actions: []openflow.Action{&openflow.ActionOutput{Port: hostPortBase + 1}}})
	send(&openflow.BarrierRequest{})
	wait(t, ch, openflow.TypeBarrierReply)
	h1, h2 := n.Host("h1"), n.Host("h2")
	n.SendFromHost("h1", TCPFrame(h1, h2, 1, 2, nil))
	time.Sleep(20 * time.Millisecond)
	if h2.ReceivedCount() != 0 {
		t.Fatal("frame crossed an administratively downed port")
	}
	_ = sw
}

func TestSwitchUnknownPortModError(t *testing.T) {
	n := NewNetwork(nil)
	sw := n.AddSwitch(1)
	ch, send := attachTestController(t, sw)
	send(&openflow.PortMod{PortNo: 99})
	em := wait(t, ch, openflow.TypeError).(*openflow.ErrorMsg)
	if em.ErrType != openflow.ErrTypePortModFailed {
		t.Fatalf("error %+v", em)
	}
	_ = sw
}
