// Package netsim is the network substrate LegoSDN is evaluated on: a
// simulator of OpenFlow 1.0 switches, links and hosts. Switches keep
// real flow tables with priorities, idle/hard timeouts and packet/byte
// counters, speak the openflow wire protocol over net.Conn (TCP or
// in-memory pipes), and forward real Ethernet frames hop by hop. The
// paper evaluated LegoSDN on FloodLight with emulated switches; this
// package plays that role, exercising the same control loop
// (PacketIn -> SDN-App -> FlowMod/PacketOut) over the same wire format.
package netsim

import (
	"encoding/binary"
	"errors"
	"fmt"

	"legosdn/internal/openflow"
)

// EtherType values the simulator understands.
const (
	EtherTypeIPv4 uint16 = 0x0800
	EtherTypeARP  uint16 = 0x0806
	EtherTypeVLAN uint16 = 0x8100
)

// IP protocol numbers used in generated traffic.
const (
	IPProtoICMP uint8 = 1
	IPProtoTCP  uint8 = 6
	IPProtoUDP  uint8 = 17
)

// ErrFrameTooShort reports a frame too small to carry its headers.
var ErrFrameTooShort = errors.New("netsim: frame too short")

// Frame is a parsed Ethernet frame. It carries exactly the fields an
// OpenFlow 1.0 match can test, plus an opaque payload.
type Frame struct {
	DlSrc     openflow.EthAddr
	DlDst     openflow.EthAddr
	DlVlan    uint16 // 0 = untagged
	DlVlanPcp uint8
	DlType    uint16
	NwSrc     uint32
	NwDst     uint32
	NwTos     uint8
	NwProto   uint8
	TpSrc     uint16
	TpDst     uint16
	Payload   []byte
}

// Fields projects the frame onto an OpenFlow match tuple, with the
// given ingress port.
func (f *Frame) Fields(inPort uint16) openflow.PacketFields {
	return openflow.PacketFields{
		InPort:    inPort,
		DlSrc:     f.DlSrc,
		DlDst:     f.DlDst,
		DlVlan:    f.DlVlan,
		DlVlanPcp: f.DlVlanPcp,
		DlType:    f.DlType,
		NwTos:     f.NwTos,
		NwProto:   f.NwProto,
		NwSrc:     f.NwSrc,
		NwDst:     f.NwDst,
		TpSrc:     f.TpSrc,
		TpDst:     f.TpDst,
	}
}

// Marshal encodes the frame as real Ethernet II bytes: optional 802.1Q
// tag, and for IPv4 a 20-byte header followed by the first 4 transport
// bytes (ports) when NwProto is TCP or UDP. ARP frames carry a minimal
// ARP body holding the sender/target IPs.
func (f *Frame) Marshal() []byte {
	size := 14 + len(f.Payload)
	if f.DlVlan != 0 {
		size += 4
	}
	switch f.DlType {
	case EtherTypeIPv4:
		size += 20
		if f.NwProto == IPProtoTCP || f.NwProto == IPProtoUDP {
			size += 4
		}
	case EtherTypeARP:
		size += 28
	}
	b := make([]byte, 0, size)
	b = append(b, f.DlDst[:]...)
	b = append(b, f.DlSrc[:]...)
	if f.DlVlan != 0 {
		b = binary.BigEndian.AppendUint16(b, EtherTypeVLAN)
		tci := f.DlVlan&0x0fff | uint16(f.DlVlanPcp&0x7)<<13
		b = binary.BigEndian.AppendUint16(b, tci)
	}
	b = binary.BigEndian.AppendUint16(b, f.DlType)
	switch f.DlType {
	case EtherTypeIPv4:
		ihl := byte(0x45) // version 4, 5 words
		b = append(b, ihl, f.NwTos)
		totalLen := 20 + len(f.Payload)
		if f.NwProto == IPProtoTCP || f.NwProto == IPProtoUDP {
			totalLen += 4
		}
		b = binary.BigEndian.AppendUint16(b, uint16(totalLen))
		b = append(b, 0, 0, 0, 0) // id, flags+frag
		b = append(b, 64, f.NwProto, 0, 0)
		b = binary.BigEndian.AppendUint32(b, f.NwSrc)
		b = binary.BigEndian.AppendUint32(b, f.NwDst)
		if f.NwProto == IPProtoTCP || f.NwProto == IPProtoUDP {
			b = binary.BigEndian.AppendUint16(b, f.TpSrc)
			b = binary.BigEndian.AppendUint16(b, f.TpDst)
		}
	case EtherTypeARP:
		// hw type ethernet, proto ipv4, sizes, opcode = NwProto (request/reply).
		b = binary.BigEndian.AppendUint16(b, 1)
		b = binary.BigEndian.AppendUint16(b, EtherTypeIPv4)
		b = append(b, 6, 4)
		b = binary.BigEndian.AppendUint16(b, uint16(f.NwProto))
		b = append(b, f.DlSrc[:]...)
		b = binary.BigEndian.AppendUint32(b, f.NwSrc)
		b = append(b, f.DlDst[:]...)
		b = binary.BigEndian.AppendUint32(b, f.NwDst)
	}
	b = append(b, f.Payload...)
	return b
}

// ParseFrame decodes frame bytes produced by Marshal (or by any real
// Ethernet source following the same layering).
func ParseFrame(b []byte) (*Frame, error) {
	if len(b) < 14 {
		return nil, ErrFrameTooShort
	}
	f := &Frame{}
	copy(f.DlDst[:], b[0:6])
	copy(f.DlSrc[:], b[6:12])
	et := binary.BigEndian.Uint16(b[12:14])
	off := 14
	if et == EtherTypeVLAN {
		if len(b) < 18 {
			return nil, ErrFrameTooShort
		}
		tci := binary.BigEndian.Uint16(b[14:16])
		f.DlVlan = tci & 0x0fff
		f.DlVlanPcp = uint8(tci >> 13)
		et = binary.BigEndian.Uint16(b[16:18])
		off = 18
	}
	f.DlType = et
	switch et {
	case EtherTypeIPv4:
		if len(b) < off+20 {
			return nil, fmt.Errorf("%w: ipv4 header", ErrFrameTooShort)
		}
		ip := b[off:]
		f.NwTos = ip[1]
		f.NwProto = ip[9]
		f.NwSrc = binary.BigEndian.Uint32(ip[12:16])
		f.NwDst = binary.BigEndian.Uint32(ip[16:20])
		off += 20
		if f.NwProto == IPProtoTCP || f.NwProto == IPProtoUDP {
			if len(b) < off+4 {
				return nil, fmt.Errorf("%w: transport ports", ErrFrameTooShort)
			}
			f.TpSrc = binary.BigEndian.Uint16(b[off : off+2])
			f.TpDst = binary.BigEndian.Uint16(b[off+2 : off+4])
			off += 4
		}
	case EtherTypeARP:
		if len(b) < off+28 {
			return nil, fmt.Errorf("%w: arp body", ErrFrameTooShort)
		}
		arp := b[off:]
		f.NwProto = uint8(binary.BigEndian.Uint16(arp[6:8]))
		f.NwSrc = binary.BigEndian.Uint32(arp[14:18])
		f.NwDst = binary.BigEndian.Uint32(arp[24:28])
		off += 28
	}
	f.Payload = append([]byte(nil), b[off:]...)
	return f, nil
}

// ApplyActions produces the frame that results from executing the
// header-rewriting actions in order, and collects the output ports (and
// enqueue targets) in sequence. The returned frame is a copy; the input
// is not mutated.
func ApplyActions(f *Frame, actions []openflow.Action) (out Frame, ports []uint16) {
	out = *f
	out.Payload = f.Payload // payload is never rewritten; sharing is safe
	for _, a := range actions {
		switch v := a.(type) {
		case *openflow.ActionOutput:
			ports = append(ports, v.Port)
		case *openflow.ActionEnqueue:
			ports = append(ports, v.Port)
		case *openflow.ActionSetVlanVID:
			out.DlVlan = v.VlanVID
		case *openflow.ActionSetVlanPCP:
			out.DlVlanPcp = v.VlanPCP
		case *openflow.ActionStripVlan:
			out.DlVlan, out.DlVlanPcp = 0, 0
		case *openflow.ActionSetDlSrc:
			out.DlSrc = v.Addr
		case *openflow.ActionSetDlDst:
			out.DlDst = v.Addr
		case *openflow.ActionSetNwSrc:
			out.NwSrc = v.Addr
		case *openflow.ActionSetNwDst:
			out.NwDst = v.Addr
		case *openflow.ActionSetNwTos:
			out.NwTos = v.Tos
		case *openflow.ActionSetTpSrc:
			out.TpSrc = v.Port
		case *openflow.ActionSetTpDst:
			out.TpDst = v.Port
		}
	}
	return out, ports
}
