package netsim

import "legosdn/internal/openflow"

// exactMatch builds a match constraining only the input port.
func exactMatch(inPort uint16) openflow.Match {
	m := openflow.MatchAll()
	m.Wildcards &^= openflow.WildcardInPort
	m.InPort = inPort
	return m
}
