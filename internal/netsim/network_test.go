package netsim

import (
	"sync"
	"testing"
	"time"

	"legosdn/internal/openflow"
)

// installPath installs forwarding entries along a linear chain so h1
// can reach hN without a controller, for pure dataplane tests.
func installPath(t *testing.T, n *Network, dstMAC openflow.EthAddr, hops []struct {
	dpid uint64
	out  uint16
}) {
	t.Helper()
	for _, h := range hops {
		m := openflow.MatchAll()
		m.Wildcards &^= openflow.WildcardDlDst
		m.DlDst = dstMAC
		if _, err := n.Switch(h.dpid).Table().Apply(&openflow.FlowMod{
			Match: m, Command: openflow.FlowModAdd, Priority: 10,
			BufferID: openflow.BufferIDNone, OutPort: openflow.PortNone,
			Actions: []openflow.Action{&openflow.ActionOutput{Port: h.out}},
		}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestLinearForwarding(t *testing.T) {
	n := Linear(3, nil)
	h1, h3 := n.Host("h1"), n.Host("h3")
	installPath(t, n, h3.MAC, []struct {
		dpid uint64
		out  uint16
	}{{1, 2}, {2, 2}, {3, hostPortBase}})

	if err := n.SendFromHost("h1", TCPFrame(h1, h3, 1, 2, []byte("across"))); err != nil {
		t.Fatal(err)
	}
	if h3.ReceivedCount() != 1 {
		t.Fatalf("h3 received %d frames", h3.ReceivedCount())
	}
	if string(h3.Received()[0].Payload) != "across" {
		t.Fatal("payload corrupted in transit")
	}
}

func TestLinkDownDropsTraffic(t *testing.T) {
	n := Linear(2, nil)
	h1, h2 := n.Host("h1"), n.Host("h2")
	installPath(t, n, h2.MAC, []struct {
		dpid uint64
		out  uint16
	}{{1, 2}, {2, hostPortBase}})

	if err := n.SetLinkDown(1, 2, 2, 1, true); err != nil {
		t.Fatal(err)
	}
	n.SendFromHost("h1", TCPFrame(h1, h2, 1, 2, nil))
	if h2.ReceivedCount() != 0 {
		t.Fatal("frame crossed a downed link")
	}
	// Restore and retry.
	if err := n.SetLinkDown(1, 2, 2, 1, false); err != nil {
		t.Fatal(err)
	}
	n.SendFromHost("h1", TCPFrame(h1, h2, 1, 2, nil))
	if h2.ReceivedCount() != 1 {
		t.Fatal("restored link does not forward")
	}
}

func TestLinkDownEmitsPortStatusBothEnds(t *testing.T) {
	n := Linear(2, nil)
	s1, s2 := n.Switch(1), n.Switch(2)
	ch1, _ := attachTestController(t, s1)
	ch2, _ := attachTestController(t, s2)
	if err := n.SetLinkDown(1, 2, 2, 1, true); err != nil {
		t.Fatal(err)
	}
	ps1 := wait(t, ch1, openflow.TypePortStatus).(*openflow.PortStatus)
	ps2 := wait(t, ch2, openflow.TypePortStatus).(*openflow.PortStatus)
	if !ps1.Desc.LinkDown() || !ps2.Desc.LinkDown() {
		t.Fatal("port status did not carry link-down state")
	}
	if ps1.Desc.PortNo != 2 || ps2.Desc.PortNo != 1 {
		t.Fatalf("wrong ports: %d %d", ps1.Desc.PortNo, ps2.Desc.PortNo)
	}
}

func TestSwitchDownSeversControlAndLinks(t *testing.T) {
	n := Linear(3, nil)
	s2 := n.Switch(2)
	ch2, _ := attachTestController(t, s2)
	ch1, _ := attachTestController(t, n.Switch(1))

	if err := n.SetSwitchDown(2, true); err != nil {
		t.Fatal(err)
	}
	// The failed switch's control channel closes.
	deadline := time.After(2 * time.Second)
	for {
		var closed bool
		select {
		case _, ok := <-ch2:
			closed = !ok
		case <-deadline:
			t.Fatal("control channel never closed")
		}
		if closed {
			break
		}
	}
	// Neighbor sees its shared link go down.
	ps := wait(t, ch1, openflow.TypePortStatus).(*openflow.PortStatus)
	if !ps.Desc.LinkDown() {
		t.Fatal("neighbor did not observe link down")
	}
	if !s2.Down() {
		t.Fatal("switch not marked down")
	}
	// Dataplane through the dead switch is dark.
	h1, h3 := n.Host("h1"), n.Host("h3")
	installPath(t, n, h3.MAC, []struct {
		dpid uint64
		out  uint16
	}{{1, 2}, {3, hostPortBase}})
	n.SendFromHost("h1", TCPFrame(h1, h3, 1, 2, nil))
	if h3.ReceivedCount() != 0 {
		t.Fatal("traffic traversed a failed switch")
	}
}

func TestForwardingLoopBounded(t *testing.T) {
	n := Ring(3, nil)
	// Install "always forward right" on every switch: a deliberate loop.
	for i := 1; i <= 3; i++ {
		n.Switch(uint64(i)).Table().Apply(&openflow.FlowMod{
			Match: openflow.MatchAll(), Command: openflow.FlowModAdd, Priority: 1,
			BufferID: openflow.BufferIDNone, OutPort: openflow.PortNone,
			Actions: []openflow.Action{&openflow.ActionOutput{Port: 2}},
		})
	}
	h1 := n.Host("h1")
	done := make(chan struct{})
	go func() {
		n.SendFromHost("h1", TCPFrame(h1, n.Host("h2"), 1, 2, nil))
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("loop did not terminate")
	}
	if n.TotalLoopDrops() == 0 {
		t.Fatal("loop drop counter never fired")
	}
}

func TestTopologyShapes(t *testing.T) {
	tests := []struct {
		name     string
		n        *Network
		switches int
		hosts    int
	}{
		{"linear5", Linear(5, nil), 5, 5},
		{"single4", Single(4, nil), 1, 4},
		{"tree d3 f2", Tree(3, 2, nil), 7, 8},
		{"ring4", Ring(4, nil), 4, 4},
		{"fattree4", FatTree(4, nil), 20, 16},
		{"clos 4x8", Clos2Tier(4, 8, 3, nil), 12, 24},
		{"random8", Random(8, 3, 1, nil), 8, 8},
	}
	for _, tc := range tests {
		if got := len(tc.n.Switches()); got != tc.switches {
			t.Errorf("%s: switches = %d, want %d", tc.name, got, tc.switches)
		}
		if got := len(tc.n.Hosts()); got != tc.hosts {
			t.Errorf("%s: hosts = %d, want %d", tc.name, got, tc.hosts)
		}
	}
}

func TestRandomTopologyDeterministic(t *testing.T) {
	a := Random(10, 5, 42, nil)
	b := Random(10, 5, 42, nil)
	if len(a.links) != len(b.links) {
		t.Fatal("same seed produced different link counts")
	}
	for i := range a.links {
		if a.links[i].a != b.links[i].a || a.links[i].b != b.links[i].b {
			t.Fatalf("link %d differs", i)
		}
	}
}

func TestAddHostErrors(t *testing.T) {
	n := NewNetwork(nil)
	if _, err := n.AddHost("h1", HostMAC(1), HostIP(1), 99, 1); err == nil {
		t.Error("missing switch should fail")
	}
	n.AddSwitch(1)
	if _, err := n.AddHost("h1", HostMAC(1), HostIP(1), 1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddHost("h1", HostMAC(2), HostIP(2), 1, 2); err == nil {
		t.Error("duplicate host name should fail")
	}
	if _, err := n.AddHost("h2", HostMAC(2), HostIP(2), 1, 1); err == nil {
		t.Error("port reuse should fail")
	}
}

func TestAddLinkErrors(t *testing.T) {
	n := NewNetwork(nil)
	n.AddSwitch(1)
	if err := n.AddLink(1, 1, 2, 1); err == nil {
		t.Error("missing endpoint should fail")
	}
	n.AddSwitch(2)
	if err := n.AddLink(1, 1, 2, 1); err != nil {
		t.Fatal(err)
	}
	if err := n.AddLink(1, 1, 2, 2); err == nil {
		t.Error("port reuse should fail")
	}
}

func TestConnectAll(t *testing.T) {
	n := Linear(3, nil)
	got := map[uint64]bool{}
	err := n.ConnectAll(func(dpid uint64) (*openflow.Conn, error) {
		got[dpid] = true
		a, b := openflow.Pipe()
		go func() { // drain the controller side
			for {
				if _, err := a.ReadMessage(); err != nil {
					return
				}
			}
		}()
		return b, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("dialed %d switches", len(got))
	}
}

func TestHostReceiveCallback(t *testing.T) {
	n := Single(2, nil)
	h1, h2 := n.Host("h1"), n.Host("h2")
	var cbCount int
	h2.Receive = func(*Frame) { cbCount++ }
	n.Switch(1).Table().Apply(&openflow.FlowMod{
		Match: openflow.MatchAll(), Command: openflow.FlowModAdd,
		BufferID: openflow.BufferIDNone, OutPort: openflow.PortNone,
		Actions: []openflow.Action{&openflow.ActionOutput{Port: hostPortBase + 1}},
	})
	n.SendFromHost("h1", TCPFrame(h1, h2, 1, 2, nil))
	if cbCount != 1 {
		t.Fatalf("callback fired %d times", cbCount)
	}
	h2.ClearReceived()
	if h2.ReceivedCount() != 0 {
		t.Fatal("clear failed")
	}
}

func TestLinkLatencyDelaysDelivery(t *testing.T) {
	n := Linear(2, nil)
	h1, h2 := n.Host("h1"), n.Host("h2")
	installPath(t, n, h2.MAC, []struct {
		dpid uint64
		out  uint16
	}{{1, 2}, {2, hostPortBase}})

	// Inter-switch link gets 5ms latency; host links stay ideal.
	if err := n.SetLinkProfile(1, 2, 2, 1, 5*time.Millisecond, 0); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	n.SendFromHost("h1", TCPFrame(h1, h2, 1, 2, nil))
	elapsed := time.Since(start)
	if h2.ReceivedCount() != 1 {
		t.Fatal("frame lost")
	}
	if elapsed < 5*time.Millisecond {
		t.Fatalf("delivery took %v, latency not applied", elapsed)
	}
	// Unknown link errors.
	if err := n.SetLinkProfile(1, 9, 2, 1, time.Millisecond, 0); err == nil {
		t.Fatal("unknown link should fail")
	}
	if err := n.SetLinkProfile(1, 2, 9, 9, time.Millisecond, 0); err == nil {
		t.Fatal("wrong far end should fail")
	}
}

func TestLinkLossDropsFraction(t *testing.T) {
	n := Linear(2, nil)
	h1, h2 := n.Host("h1"), n.Host("h2")
	installPath(t, n, h2.MAC, []struct {
		dpid uint64
		out  uint16
	}{{1, 2}, {2, hostPortBase}})
	if err := n.SetLinkProfile(1, 2, 2, 1, 0, 0.5); err != nil {
		t.Fatal(err)
	}
	const sent = 400
	for i := 0; i < sent; i++ {
		n.SendFromHost("h1", TCPFrame(h1, h2, uint16(i), 2, nil))
	}
	got := h2.ReceivedCount()
	if got < sent/4 || got > 3*sent/4 {
		t.Fatalf("delivered %d of %d at 50%% loss", got, sent)
	}
	if n.LossDrops.Load() != uint64(sent-got) {
		t.Fatalf("loss counter %d, want %d", n.LossDrops.Load(), sent-got)
	}
}

func TestSetAllLinkProfiles(t *testing.T) {
	n := Linear(3, nil)
	n.SetAllLinkProfiles(time.Millisecond, 0)
	h1, h3 := n.Host("h1"), n.Host("h3")
	installPath(t, n, h3.MAC, []struct {
		dpid uint64
		out  uint16
	}{{1, 2}, {2, 2}, {3, hostPortBase}})
	start := time.Now()
	n.SendFromHost("h1", TCPFrame(h1, h3, 1, 2, nil))
	// 4 hops with 1ms each: host->s1, s1->s2, s2->s3, s3->host.
	if elapsed := time.Since(start); elapsed < 3*time.Millisecond {
		t.Fatalf("3-switch path took %v", elapsed)
	}
	if h3.ReceivedCount() != 1 {
		t.Fatal("frame lost")
	}
}

// Regression test (run under -race): the loss RNG is shared by every
// delivery and *rand.Rand is not concurrency-safe, so parallel senders
// over a lossy link must not race on it.
func TestLinkLossParallelSenders(t *testing.T) {
	n := Linear(2, nil)
	h1, h2 := n.Host("h1"), n.Host("h2")
	installPath(t, n, h2.MAC, []struct {
		dpid uint64
		out  uint16
	}{{1, 2}, {2, hostPortBase}})
	if err := n.SetLinkProfile(1, 2, 2, 1, 0, 0.5); err != nil {
		t.Fatal(err)
	}
	const workers, perWorker = 8, 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				n.SendFromHost("h1", TCPFrame(h1, h2, uint16(w*perWorker+i), 2, nil))
			}
		}()
	}
	wg.Wait()
	const sent = workers * perWorker
	got := h2.ReceivedCount()
	if got+int(n.LossDrops.Load()) != sent {
		t.Fatalf("delivered %d + dropped %d != sent %d", got, n.LossDrops.Load(), sent)
	}
	if got < sent/4 || got > 3*sent/4 {
		t.Fatalf("delivered %d of %d at 50%% loss", got, sent)
	}
}
