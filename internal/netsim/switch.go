package netsim

import (
	"fmt"
	"sync"
	"sync/atomic"

	"legosdn/internal/openflow"
)

// MaxHops bounds dataplane forwarding depth; frames exceeding it are
// dropped and counted, which is how the simulator surfaces forwarding
// loops created by byzantine SDN-Apps.
const MaxHops = 64

// defaultMissSendLen is the PacketIn truncation length before the
// controller configures one.
const defaultMissSendLen = 128

// Port is one switch port and its live state.
type Port struct {
	Desc  openflow.PhyPort
	Stats openflow.PortStatsEntry
}

// bufferedPacket is a frame parked in the switch buffer awaiting a
// controller decision (referenced by PacketIn/PacketOut buffer ids).
type bufferedPacket struct {
	frame  *Frame
	inPort uint16
}

// Switch simulates one OpenFlow 1.0 switch: a flow table, ports, a
// packet buffer and a control channel. All exported methods are safe
// for concurrent use.
type Switch struct {
	DPID uint64

	net   *Network
	clock Clock

	mu          sync.Mutex
	ports       map[uint16]*Port
	buffers     map[uint32]*bufferedPacket
	nextBuf     uint32
	missSendLen uint16
	conn        *openflow.Conn   // master: receives asynchronous messages
	slaves      []*openflow.Conn // warm standbys: request/reply only
	down        bool

	table *FlowTable

	// Telemetry counters (atomic: read by benchmarks while forwarding).
	PacketIns      atomic.Uint64
	FlowModsRx     atomic.Uint64
	LoopDrops      atomic.Uint64
	TableMissDrops atomic.Uint64
	Delivered      atomic.Uint64
}

func newSwitch(n *Network, dpid uint64, clock Clock) *Switch {
	return &Switch{
		DPID:        dpid,
		net:         n,
		clock:       clock,
		ports:       make(map[uint16]*Port),
		buffers:     make(map[uint32]*bufferedPacket),
		missSendLen: defaultMissSendLen,
		table:       NewFlowTable(clock),
	}
}

// Table exposes the switch's flow table (used by invariant checkers and
// tests; the control plane mutates it only through OpenFlow messages).
func (s *Switch) Table() *FlowTable { return s.table }

// addPort creates port number p with a MAC derived from the DPID.
func (s *Switch) addPort(p uint16) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.ports[p]; ok {
		return
	}
	hw := openflow.EthAddr{0x02, byte(s.DPID >> 24), byte(s.DPID >> 16), byte(s.DPID >> 8), byte(s.DPID), byte(p)}
	s.ports[p] = &Port{
		Desc: openflow.PhyPort{
			PortNo: p,
			HWAddr: hw,
			Name:   fmt.Sprintf("s%d-eth%d", s.DPID, p),
			Curr:   1,
		},
		Stats: openflow.PortStatsEntry{PortNo: p},
	}
}

// PortNumbers lists the switch's port numbers in unspecified order.
func (s *Switch) PortNumbers() []uint16 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]uint16, 0, len(s.ports))
	for p := range s.ports {
		out = append(out, p)
	}
	return out
}

// Down reports whether the switch has been failed by the scenario.
func (s *Switch) Down() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.down
}

// Attach binds the switch to a master controller connection and starts
// the control pump, which owns all reads from the connection. The
// switch sends its Hello immediately, as the protocol requires of both
// ends. Asynchronous messages (PacketIn, FlowRemoved, PortStatus) go
// only to the master; see AttachSlave for warm standbys.
func (s *Switch) Attach(conn *openflow.Conn) error {
	s.mu.Lock()
	if s.down {
		s.mu.Unlock()
		return fmt.Errorf("netsim: switch %d is down", s.DPID)
	}
	s.conn = conn
	s.mu.Unlock()
	s.startPump(conn)
	return nil
}

// AttachSlave binds an additional controller connection in the slave
// role, mirroring OpenFlow's master/slave controller roles: the switch
// answers the slave's requests (handshake, barriers, stats) but sends
// it no asynchronous messages and accepts its state-changing commands
// only after PromoteSlave. Replica followers hold slave connections so
// failover needs no new TCP/handshake work.
func (s *Switch) AttachSlave(conn *openflow.Conn) error {
	s.mu.Lock()
	if s.down {
		s.mu.Unlock()
		return fmt.Errorf("netsim: switch %d is down", s.DPID)
	}
	s.slaves = append(s.slaves, conn)
	s.mu.Unlock()
	s.startPump(conn)
	return nil
}

// PromoteSlave moves a registered slave connection into the master
// role. The displaced master, if any, is demoted to slave — its pump
// keeps running and drops the conn when it errors (a dead leader's
// conns are typically already closed). Returns an error if conn was
// never attached as a slave.
func (s *Switch) PromoteSlave(conn *openflow.Conn) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	idx := -1
	for i, c := range s.slaves {
		if c == conn {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("netsim: switch %d: promoting a connection that is not an attached slave", s.DPID)
	}
	s.slaves = append(s.slaves[:idx], s.slaves[idx+1:]...)
	if s.conn != nil {
		s.slaves = append(s.slaves, s.conn)
	}
	s.conn = conn
	return nil
}

// startPump sends the switch's Hello and runs the read pump. The Hello
// is sent from the pump goroutine: over synchronous transports
// (net.Pipe) a write blocks until the peer reads, and the peer may
// attach its reader after Attach/AttachSlave returns.
func (s *Switch) startPump(conn *openflow.Conn) {
	go func() {
		defer s.dropConn(conn)
		if err := conn.WriteMessage(&openflow.Hello{}); err != nil {
			return
		}
		s.pump(conn)
	}()
}

// dropConn forgets a connection whose pump exited, so a dead master
// stops eating asynchronous messages and a dead slave leaves the
// standby list.
func (s *Switch) dropConn(conn *openflow.Conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.conn == conn {
		s.conn = nil
		return
	}
	for i, c := range s.slaves {
		if c == conn {
			s.slaves = append(s.slaves[:i], s.slaves[i+1:]...)
			return
		}
	}
}

// Detach severs all control channels — master and slaves (used for
// controller-failure scenarios). The dataplane keeps forwarding on
// installed rules.
func (s *Switch) Detach() {
	s.mu.Lock()
	conn := s.conn
	slaves := s.slaves
	s.conn = nil
	s.slaves = nil
	s.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
	for _, c := range slaves {
		c.Close()
	}
}

// SlaveCount reports the number of attached standby connections.
func (s *Switch) SlaveCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.slaves)
}

func (s *Switch) currentConn() *openflow.Conn {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.conn
}

// send writes an asynchronous message to the controller, dropping it
// silently when no controller is attached (as a real switch would).
func (s *Switch) send(m openflow.Message) {
	if conn := s.currentConn(); conn != nil {
		_ = conn.WriteMessage(m)
	}
}

func (s *Switch) pump(conn *openflow.Conn) {
	for {
		msg, err := conn.ReadMessage()
		if err != nil {
			return
		}
		var replies []openflow.Message
		if stateChanging(msg) && !s.isMaster(conn) {
			// Slave fencing: a standby (or a deposed master demoted by
			// PromoteSlave) cannot mutate the dataplane. This is what
			// keeps a partitioned old leader from issuing writes after
			// a new leader took over.
			replies = []openflow.Message{&openflow.ErrorMsg{
				BaseMsg: openflow.BaseMsg{Xid: msg.GetXid()},
				ErrType: openflow.ErrTypeBadRequest,
				Code:    openflow.BadRequestEperm,
			}}
		} else {
			replies = s.HandleMessage(msg)
		}
		for _, reply := range replies {
			if err := conn.WriteMessage(reply); err != nil {
				return
			}
		}
	}
}

// stateChanging reports whether msg mutates switch state; only the
// master connection may send these.
func stateChanging(msg openflow.Message) bool {
	switch msg.(type) {
	case *openflow.FlowMod, *openflow.PacketOut, *openflow.PortMod, *openflow.SetConfig:
		return true
	}
	return false
}

func (s *Switch) isMaster(conn *openflow.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.conn == conn
}

// HandleMessage executes one controller-to-switch message and returns
// the direct replies. Asynchronous messages triggered as side effects
// (FlowRemoved, PacketIn from PacketOut flooding) go out via send.
func (s *Switch) HandleMessage(msg openflow.Message) []openflow.Message {
	switch m := msg.(type) {
	case *openflow.Hello:
		return nil
	case *openflow.EchoRequest:
		return []openflow.Message{&openflow.EchoReply{BaseMsg: openflow.BaseMsg{Xid: m.Xid}, Data: m.Data}}
	case *openflow.FeaturesRequest:
		return []openflow.Message{s.featuresReply(m.Xid)}
	case *openflow.GetConfigRequest:
		s.mu.Lock()
		msl := s.missSendLen
		s.mu.Unlock()
		return []openflow.Message{&openflow.GetConfigReply{BaseMsg: openflow.BaseMsg{Xid: m.Xid}, MissSendLen: msl}}
	case *openflow.SetConfig:
		s.mu.Lock()
		s.missSendLen = m.MissSendLen
		s.mu.Unlock()
		return nil
	case *openflow.FlowMod:
		return s.handleFlowMod(m)
	case *openflow.PacketOut:
		return s.handlePacketOut(m)
	case *openflow.StatsRequest:
		return splitStatsReply(s.handleStatsRequest(m))
	case *openflow.BarrierRequest:
		return []openflow.Message{&openflow.BarrierReply{BaseMsg: openflow.BaseMsg{Xid: m.Xid}}}
	case *openflow.PortMod:
		return s.handlePortMod(m)
	case *openflow.EchoReply, *openflow.Vendor:
		return nil
	default:
		return []openflow.Message{&openflow.ErrorMsg{
			BaseMsg: openflow.BaseMsg{Xid: msg.GetXid()},
			ErrType: openflow.ErrTypeBadRequest,
		}}
	}
}

func (s *Switch) featuresReply(xid uint32) *openflow.FeaturesReply {
	s.mu.Lock()
	defer s.mu.Unlock()
	fr := &openflow.FeaturesReply{
		BaseMsg:      openflow.BaseMsg{Xid: xid},
		DatapathID:   s.DPID,
		NBuffers:     256,
		NTables:      1,
		Capabilities: openflow.CapFlowStats | openflow.CapTableStats | openflow.CapPortStats,
		Actions:      1<<12 - 1,
	}
	for _, p := range s.ports {
		fr.Ports = append(fr.Ports, p.Desc)
	}
	return fr
}

func (s *Switch) handleFlowMod(m *openflow.FlowMod) []openflow.Message {
	s.FlowModsRx.Add(1)
	removed, err := s.table.Apply(m)
	if err != nil {
		code := openflow.FlowModFailedBadCommand
		switch err {
		case ErrTableFull:
			code = openflow.FlowModFailedAllTablesFull
		case ErrOverlap:
			code = openflow.FlowModFailedOverlap
		}
		data, _ := openflow.Encode(m)
		if len(data) > 64 {
			data = data[:64]
		}
		return []openflow.Message{&openflow.ErrorMsg{
			BaseMsg: openflow.BaseMsg{Xid: m.Xid},
			ErrType: openflow.ErrTypeFlowModFailed,
			Code:    code,
			Data:    data,
		}}
	}
	s.emitFlowRemoved(removed)
	// A FlowMod referencing a buffered packet also releases that packet
	// through the new actions.
	if m.BufferID != openflow.BufferIDNone &&
		(m.Command == openflow.FlowModAdd || m.Command == openflow.FlowModModify || m.Command == openflow.FlowModModifyStrict) {
		if bp := s.takeBuffer(m.BufferID); bp != nil {
			s.execActions(bp.frame, bp.inPort, m.Actions, 0)
		}
	}
	return nil
}

func (s *Switch) handlePacketOut(m *openflow.PacketOut) []openflow.Message {
	var frame *Frame
	inPort := m.InPort
	if m.BufferID != openflow.BufferIDNone {
		bp := s.takeBuffer(m.BufferID)
		if bp == nil {
			return []openflow.Message{&openflow.ErrorMsg{
				BaseMsg: openflow.BaseMsg{Xid: m.Xid},
				ErrType: openflow.ErrTypeBadRequest,
			}}
		}
		frame = bp.frame
		if inPort == openflow.PortNone {
			inPort = bp.inPort
		}
	} else {
		f, err := ParseFrame(m.Data)
		if err != nil {
			return []openflow.Message{&openflow.ErrorMsg{
				BaseMsg: openflow.BaseMsg{Xid: m.Xid},
				ErrType: openflow.ErrTypeBadRequest,
			}}
		}
		frame = f
	}
	s.execActions(frame, inPort, m.Actions, 0)
	return nil
}

func (s *Switch) handlePortMod(m *openflow.PortMod) []openflow.Message {
	s.mu.Lock()
	p, ok := s.ports[m.PortNo]
	if !ok {
		s.mu.Unlock()
		return []openflow.Message{&openflow.ErrorMsg{
			BaseMsg: openflow.BaseMsg{Xid: m.Xid},
			ErrType: openflow.ErrTypePortModFailed,
		}}
	}
	p.Desc.Config = (p.Desc.Config &^ m.Mask) | (m.Config & m.Mask)
	desc := p.Desc
	s.mu.Unlock()
	s.send(&openflow.PortStatus{Reason: openflow.PortReasonModify, Desc: desc})
	return nil
}

func (s *Switch) handleStatsRequest(m *openflow.StatsRequest) *openflow.StatsReply {
	reply := &openflow.StatsReply{BaseMsg: openflow.BaseMsg{Xid: m.Xid}, StatsType: m.StatsType}
	now := s.clock.Now()
	switch m.StatsType {
	case openflow.StatsTypeDesc:
		reply.Raw = []byte("legosdn netsim switch")
	case openflow.StatsTypeFlow:
		req := m.Flow
		if req == nil {
			req = &openflow.FlowStatsRequest{Match: openflow.MatchAll(), OutPort: openflow.PortNone}
		}
		for _, e := range s.table.MatchingEntries(&req.Match, req.OutPort) {
			d := now.Sub(e.Installed)
			reply.Flows = append(reply.Flows, openflow.FlowStatsEntry{
				TableID:      0,
				Match:        e.Match,
				DurationSec:  uint32(d.Seconds()),
				DurationNsec: uint32(d.Nanoseconds() % 1e9),
				Priority:     e.Priority,
				IdleTimeout:  e.IdleTimeout,
				HardTimeout:  e.HardTimeout,
				Cookie:       e.Cookie,
				PacketCount:  e.PacketCount,
				ByteCount:    e.ByteCount,
				Actions:      e.Actions,
			})
		}
	case openflow.StatsTypeAggregate:
		req := m.Flow
		if req == nil {
			req = &openflow.FlowStatsRequest{Match: openflow.MatchAll(), OutPort: openflow.PortNone}
		}
		agg := &openflow.AggregateStats{}
		for _, e := range s.table.MatchingEntries(&req.Match, req.OutPort) {
			agg.PacketCount += e.PacketCount
			agg.ByteCount += e.ByteCount
			agg.FlowCount++
		}
		reply.Aggregate = agg
	case openflow.StatsTypePort:
		s.mu.Lock()
		want := openflow.PortNone
		if m.Port != nil {
			want = m.Port.PortNo
		}
		for _, p := range s.ports {
			if want == openflow.PortNone || p.Desc.PortNo == want {
				reply.Ports = append(reply.Ports, p.Stats)
			}
		}
		s.mu.Unlock()
	case openflow.StatsTypeTable:
		reply.Raw = []byte(fmt.Sprintf("table0 entries=%d", s.table.Len()))
	}
	return reply
}

// statsPartBudget bounds one multipart stats part's body, safely under
// the 16-bit OpenFlow length field.
const statsPartBudget = 56 * 1024

// splitStatsReply breaks an oversized StatsReply into OpenFlow
// multipart parts (StatsReplyFlagMore on every part but the last), the
// behavior real switches exhibit for large flow tables. Small replies
// pass through as a single message.
func splitStatsReply(reply *openflow.StatsReply) []openflow.Message {
	switch reply.StatsType {
	case openflow.StatsTypeFlow:
		if len(reply.Flows) == 0 {
			return []openflow.Message{reply}
		}
		var parts []openflow.Message
		cur := &openflow.StatsReply{BaseMsg: reply.BaseMsg, StatsType: reply.StatsType}
		size := 0
		for _, f := range reply.Flows {
			n := f.EncodedLen()
			if size+n > statsPartBudget && len(cur.Flows) > 0 {
				parts = append(parts, cur)
				cur = &openflow.StatsReply{BaseMsg: reply.BaseMsg, StatsType: reply.StatsType}
				size = 0
			}
			cur.Flows = append(cur.Flows, f)
			size += n
		}
		parts = append(parts, cur)
		for i := 0; i < len(parts)-1; i++ {
			parts[i].(*openflow.StatsReply).Flags |= openflow.StatsReplyFlagMore
		}
		return parts
	case openflow.StatsTypePort:
		const perPart = statsPartBudget / 104
		if len(reply.Ports) <= perPart {
			return []openflow.Message{reply}
		}
		var parts []openflow.Message
		for start := 0; start < len(reply.Ports); start += perPart {
			end := start + perPart
			if end > len(reply.Ports) {
				end = len(reply.Ports)
			}
			part := &openflow.StatsReply{BaseMsg: reply.BaseMsg, StatsType: reply.StatsType,
				Ports: reply.Ports[start:end]}
			if end < len(reply.Ports) {
				part.Flags |= openflow.StatsReplyFlagMore
			}
			parts = append(parts, part)
		}
		return parts
	default:
		return []openflow.Message{reply}
	}
}

func (s *Switch) emitFlowRemoved(removed []Removed) {
	now := s.clock.Now()
	for _, r := range removed {
		if r.Entry.Flags&openflow.FlowModFlagSendFlowRem == 0 {
			continue
		}
		d := now.Sub(r.Entry.Installed)
		s.send(&openflow.FlowRemoved{
			Match:        r.Entry.Match,
			Cookie:       r.Entry.Cookie,
			Priority:     r.Entry.Priority,
			Reason:       r.Reason,
			DurationSec:  uint32(d.Seconds()),
			DurationNsec: uint32(d.Nanoseconds() % 1e9),
			IdleTimeout:  r.Entry.IdleTimeout,
			PacketCount:  r.Entry.PacketCount,
			ByteCount:    r.Entry.ByteCount,
		})
	}
}

// Expire evicts timed-out entries and notifies the controller.
func (s *Switch) Expire() {
	s.emitFlowRemoved(s.table.Expire())
}

func (s *Switch) storeBuffer(f *Frame, inPort uint16) uint32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextBuf++
	if s.nextBuf == openflow.BufferIDNone {
		s.nextBuf = 1
	}
	id := s.nextBuf
	s.buffers[id] = &bufferedPacket{frame: f, inPort: inPort}
	// Bound the buffer pool like real hardware: drop oldest beyond 256.
	if len(s.buffers) > 256 {
		for k := range s.buffers {
			if k != id {
				delete(s.buffers, k)
				break
			}
		}
	}
	return id
}

func (s *Switch) takeBuffer(id uint32) *bufferedPacket {
	s.mu.Lock()
	defer s.mu.Unlock()
	bp := s.buffers[id]
	delete(s.buffers, id)
	return bp
}

// Inject delivers a frame into the switch dataplane at inPort, as if it
// arrived on the wire. It is the entry point used by hosts and by
// upstream switches.
func (s *Switch) Inject(inPort uint16, f *Frame) {
	s.receive(inPort, f, 0)
}

func (s *Switch) receive(inPort uint16, f *Frame, hops int) {
	if hops > MaxHops {
		s.LoopDrops.Add(1)
		return
	}
	s.mu.Lock()
	if s.down {
		s.mu.Unlock()
		return
	}
	if p, ok := s.ports[inPort]; ok {
		p.Stats.RxPackets++
		p.Stats.RxBytes += uint64(len(f.Payload) + 34)
	}
	s.mu.Unlock()

	raw := f.Marshal()
	entry := s.table.Lookup(f.Fields(inPort), len(raw))
	if entry == nil {
		s.tableMiss(inPort, f, raw)
		return
	}
	s.execActions(f, inPort, entry.Actions, hops)
}

func (s *Switch) tableMiss(inPort uint16, f *Frame, raw []byte) {
	conn := s.currentConn()
	if conn == nil {
		s.TableMissDrops.Add(1)
		return
	}
	s.mu.Lock()
	msl := int(s.missSendLen)
	s.mu.Unlock()
	bufID := s.storeBuffer(f, inPort)
	data := raw
	if msl > 0 && len(data) > msl {
		data = data[:msl]
	}
	s.PacketIns.Add(1)
	_ = conn.WriteMessage(&openflow.PacketIn{
		BufferID: bufID,
		TotalLen: uint16(len(raw)),
		InPort:   inPort,
		Reason:   openflow.PacketInReasonNoMatch,
		Data:     data,
	})
}

// execActions applies an action list to a frame, forwarding out each
// referenced port.
func (s *Switch) execActions(f *Frame, inPort uint16, actions []openflow.Action, hops int) {
	out, ports := ApplyActions(f, actions)
	for _, p := range ports {
		s.output(&out, inPort, p, hops)
	}
}

func (s *Switch) output(f *Frame, inPort, outPort uint16, hops int) {
	switch outPort {
	case openflow.PortController:
		conn := s.currentConn()
		if conn == nil {
			return
		}
		raw := f.Marshal()
		s.PacketIns.Add(1)
		_ = conn.WriteMessage(&openflow.PacketIn{
			BufferID: openflow.BufferIDNone,
			TotalLen: uint16(len(raw)),
			InPort:   inPort,
			Reason:   openflow.PacketInReasonAction,
			Data:     raw,
		})
	case openflow.PortInPort:
		s.transmit(f, inPort, hops)
	case openflow.PortFlood, openflow.PortAll:
		s.mu.Lock()
		var targets []uint16
		for n, p := range s.ports {
			if n == inPort {
				continue
			}
			if outPort == openflow.PortFlood && p.Desc.Config&openflow.PortConfigNoFlood != 0 {
				continue
			}
			targets = append(targets, n)
		}
		s.mu.Unlock()
		for _, t := range targets {
			s.transmit(f, t, hops)
		}
	case openflow.PortTable, openflow.PortNormal, openflow.PortLocal, openflow.PortNone:
		// PortTable re-submits a PacketOut through the flow table.
		if outPort == openflow.PortTable {
			s.receive(inPort, f, hops+1)
		}
	default:
		s.transmit(f, outPort, hops)
	}
}

// transmit puts the frame on the wire attached to outPort.
func (s *Switch) transmit(f *Frame, outPort uint16, hops int) {
	s.mu.Lock()
	p, ok := s.ports[outPort]
	if !ok || s.down || p.Desc.Config&openflow.PortConfigDown != 0 || p.Desc.LinkDown() {
		s.mu.Unlock()
		return
	}
	p.Stats.TxPackets++
	p.Stats.TxBytes += uint64(len(f.Payload) + 34)
	s.mu.Unlock()
	if s.net != nil {
		s.net.deliver(s.DPID, outPort, f, hops)
	}
}

// setPortLinkState flips the link-down bit and emits PortStatus.
func (s *Switch) setPortLinkState(portNo uint16, down bool) {
	s.mu.Lock()
	p, ok := s.ports[portNo]
	if !ok {
		s.mu.Unlock()
		return
	}
	if down {
		p.Desc.State |= openflow.PortStateLinkDown
	} else {
		p.Desc.State &^= openflow.PortStateLinkDown
	}
	desc := p.Desc
	s.mu.Unlock()
	s.send(&openflow.PortStatus{Reason: openflow.PortReasonModify, Desc: desc})
}
