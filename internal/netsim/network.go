package netsim

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"legosdn/internal/metrics"
	"legosdn/internal/openflow"
)

// endpoint identifies one end of a link: a switch port or a host.
type endpoint struct {
	dpid uint64 // 0 when host != ""
	port uint16
	host string
}

// Link is a bidirectional cable between two endpoints.
type Link struct {
	a, b endpoint
	down bool
	// latency delays each frame crossing the link; loss drops a
	// fraction of them. Zero values model an ideal cable.
	latency time.Duration
	loss    float64
}

// Host is an end-station attached to a switch port. Frames delivered to
// a host are recorded and handed to the optional Receive callback.
type Host struct {
	Name string
	MAC  openflow.EthAddr
	IP   uint32

	attach endpoint // switch side

	mu       sync.Mutex
	received []*Frame
	// Receive, when set, observes every delivered frame.
	Receive func(*Frame)
}

// ReceivedCount reports how many frames the host has accepted.
func (h *Host) ReceivedCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.received)
}

// Received returns a copy of the delivered frames.
func (h *Host) Received() []*Frame {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]*Frame(nil), h.received...)
}

// ClearReceived resets the delivery log.
func (h *Host) ClearReceived() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.received = nil
}

func (h *Host) deliver(f *Frame) {
	h.mu.Lock()
	h.received = append(h.received, f)
	cb := h.Receive
	h.mu.Unlock()
	if cb != nil {
		cb(f)
	}
}

// Network is a topology of simulated switches, hosts and links. It owns
// frame delivery between elements and failure injection (link and
// switch up/down), which surface to the controller as PortStatus
// events and closed control channels — exactly the event sources the
// paper's Crash-Pad transforms operate on.
type Network struct {
	clock Clock

	mu       sync.Mutex
	switches map[uint64]*Switch
	hosts    map[string]*Host
	links    []*Link
	attached map[endpoint]*Link

	// lossRng has its own lock: *rand.Rand is not safe for concurrent
	// use, and the loss roll must stay race-free even if a delivery path
	// ever reads it outside n.mu.
	rngMu   sync.Mutex
	lossRng *rand.Rand

	// LossDrops counts frames shed by lossy links.
	LossDrops atomic.Uint64

	// depthHist, when set, observes every flow-table lookup's depth
	// (entries examined); AddSwitch wires it into new switches.
	depthHist *metrics.Histogram
}

// LookupDepthBuckets are the histogram bounds for flow-table lookup
// depth: entries examined per lookup, 1 being an immediate exact-match
// hit. An indexed table should keep nearly all mass in the first
// buckets even at 10k entries.
var LookupDepthBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 1024, 4096}

// NewNetwork creates an empty network using clock for all switch
// timekeeping (RealClock if nil).
func NewNetwork(clock Clock) *Network {
	if clock == nil {
		clock = RealClock{}
	}
	return &Network{
		clock:    clock,
		switches: make(map[uint64]*Switch),
		hosts:    make(map[string]*Host),
		attached: make(map[endpoint]*Link),
		lossRng:  rand.New(rand.NewSource(1)),
	}
}

// lossRoll draws a uniform sample for a lossy-link drop decision.
func (n *Network) lossRoll() float64 {
	n.rngMu.Lock()
	defer n.rngMu.Unlock()
	return n.lossRng.Float64()
}

// SetLossSeed reseeds the lossy-link drop stream, so two networks with
// the same topology, seed and traffic shed the same frames. The default
// seed is 1.
func (n *Network) SetLossSeed(seed int64) {
	n.rngMu.Lock()
	defer n.rngMu.Unlock()
	n.lossRng = rand.New(rand.NewSource(seed))
}

// AddSwitch creates a switch with the given datapath id.
func (n *Network) AddSwitch(dpid uint64) *Switch {
	n.mu.Lock()
	defer n.mu.Unlock()
	if s, ok := n.switches[dpid]; ok {
		return s
	}
	s := newSwitch(n, dpid, n.clock)
	if h := n.depthHist; h != nil {
		s.Table().SetDepthObserver(func(depth int) { h.Observe(float64(depth)) })
	}
	n.switches[dpid] = s
	return s
}

// InstrumentFlowTables points every switch's flow table — existing and
// future — at a lookup-depth histogram, one observation per dataplane
// lookup. Pass nil to detach. The histogram is the evidence that the
// indexed tables keep lookup depth flat as rule counts grow.
func (n *Network) InstrumentFlowTables(h *metrics.Histogram) {
	n.mu.Lock()
	n.depthHist = h
	switches := make([]*Switch, 0, len(n.switches))
	for _, s := range n.switches {
		switches = append(switches, s)
	}
	n.mu.Unlock()
	obs := func(depth int) { h.Observe(float64(depth)) }
	if h == nil {
		obs = nil
	}
	for _, s := range switches {
		s.Table().SetDepthObserver(obs)
	}
}

// Switch returns the switch with the given dpid, or nil.
func (n *Network) Switch(dpid uint64) *Switch {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.switches[dpid]
}

// Switches returns all switches ordered by dpid.
func (n *Network) Switches() []*Switch {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]*Switch, 0, len(n.switches))
	for _, s := range n.switches {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].DPID < out[j].DPID })
	return out
}

// Host returns the named host, or nil.
func (n *Network) Host(name string) *Host {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.hosts[name]
}

// Hosts returns all hosts ordered by name.
func (n *Network) Hosts() []*Host {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]*Host, 0, len(n.hosts))
	for _, h := range n.hosts {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// AddHost attaches a new host to a switch port. The switch port is
// created if absent.
func (n *Network) AddHost(name string, mac openflow.EthAddr, ip uint32, dpid uint64, port uint16) (*Host, error) {
	n.mu.Lock()
	sw, ok := n.switches[dpid]
	if !ok {
		n.mu.Unlock()
		return nil, fmt.Errorf("netsim: no switch %d", dpid)
	}
	if _, dup := n.hosts[name]; dup {
		n.mu.Unlock()
		return nil, fmt.Errorf("netsim: duplicate host %q", name)
	}
	swEnd := endpoint{dpid: dpid, port: port}
	hostEnd := endpoint{host: name}
	if _, used := n.attached[swEnd]; used {
		n.mu.Unlock()
		return nil, fmt.Errorf("netsim: port %d/%d already wired", dpid, port)
	}
	h := &Host{Name: name, MAC: mac, IP: ip, attach: swEnd}
	n.hosts[name] = h
	l := &Link{a: swEnd, b: hostEnd}
	n.links = append(n.links, l)
	n.attached[swEnd] = l
	n.attached[hostEnd] = l
	n.mu.Unlock()
	sw.addPort(port)
	return h, nil
}

// AddLink wires two switch ports together, creating the ports if
// absent.
func (n *Network) AddLink(dpidA uint64, portA uint16, dpidB uint64, portB uint16) error {
	n.mu.Lock()
	swA, okA := n.switches[dpidA]
	swB, okB := n.switches[dpidB]
	if !okA || !okB {
		n.mu.Unlock()
		return fmt.Errorf("netsim: link endpoints missing (%d,%d)", dpidA, dpidB)
	}
	ea := endpoint{dpid: dpidA, port: portA}
	eb := endpoint{dpid: dpidB, port: portB}
	if _, used := n.attached[ea]; used {
		n.mu.Unlock()
		return fmt.Errorf("netsim: port %d/%d already wired", dpidA, portA)
	}
	if _, used := n.attached[eb]; used {
		n.mu.Unlock()
		return fmt.Errorf("netsim: port %d/%d already wired", dpidB, portB)
	}
	l := &Link{a: ea, b: eb}
	n.links = append(n.links, l)
	n.attached[ea] = l
	n.attached[eb] = l
	n.mu.Unlock()
	swA.addPort(portA)
	swB.addPort(portB)
	return nil
}

// SetLinkProfile applies a latency/loss profile to the link between
// two switch ports (as SetLinkDown addresses links). Latency delays
// each frame on the sender's goroutine; loss drops frames with the
// given probability (seeded, reproducible).
func (n *Network) SetLinkProfile(dpidA uint64, portA uint16, dpidB uint64, portB uint16, latency time.Duration, loss float64) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	l := n.attached[endpoint{dpid: dpidA, port: portA}]
	if l == nil {
		return fmt.Errorf("netsim: no link at %d/%d", dpidA, portA)
	}
	want := endpoint{dpid: dpidB, port: portB}
	if l.a != want && l.b != want {
		return fmt.Errorf("netsim: link at %d/%d does not reach %d/%d", dpidA, portA, dpidB, portB)
	}
	l.latency, l.loss = latency, loss
	return nil
}

// SetAllLinkProfiles applies one latency/loss profile to every link,
// including host attachments — a quick way to model a uniform fabric.
func (n *Network) SetAllLinkProfiles(latency time.Duration, loss float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, l := range n.links {
		l.latency, l.loss = latency, loss
	}
}

// deliver moves a frame from (dpid,port) across its link.
func (n *Network) deliver(dpid uint64, port uint16, f *Frame, hops int) {
	n.mu.Lock()
	l := n.attached[endpoint{dpid: dpid, port: port}]
	if l == nil || l.down {
		n.mu.Unlock()
		return
	}
	latency := l.latency
	if l.loss > 0 && n.lossRoll() < l.loss {
		n.LossDrops.Add(1)
		n.mu.Unlock()
		return
	}
	other := l.a
	if other == (endpoint{dpid: dpid, port: port}) {
		other = l.b
	}
	var sw *Switch
	var host *Host
	if other.host != "" {
		host = n.hosts[other.host]
	} else {
		sw = n.switches[other.dpid]
	}
	n.mu.Unlock()

	if latency > 0 {
		// Propagation delay rides on the sender's goroutine, which is
		// exactly where a store-and-forward hop would stall.
		time.Sleep(latency)
	}

	// Copy so downstream mutation cannot alias upstream state.
	cp := *f
	switch {
	case host != nil:
		// Hosts accept frames addressed to them, broadcast or multicast.
		if f.DlDst == host.MAC || f.DlDst.IsBroadcast() || f.DlDst.IsMulticast() {
			if sw := n.Switch(dpid); sw != nil {
				sw.Delivered.Add(1)
			}
			host.deliver(&cp)
		}
	case sw != nil:
		sw.receive(other.port, &cp, hops+1)
	}
}

// SendFromHost injects a frame into the network from the named host.
func (n *Network) SendFromHost(name string, f *Frame) error {
	n.mu.Lock()
	h, ok := n.hosts[name]
	if !ok {
		n.mu.Unlock()
		return fmt.Errorf("netsim: no host %q", name)
	}
	l := n.attached[endpoint{host: name}]
	sw := n.switches[h.attach.dpid]
	n.mu.Unlock()
	if l == nil || l.down || sw == nil {
		return nil // cable unplugged: silently dropped, as in reality
	}
	if f.DlSrc == (openflow.EthAddr{}) {
		f.DlSrc = h.MAC
	}
	sw.receive(h.attach.port, f, 0)
	return nil
}

// SetLinkDown fails (or restores) the link between two switch ports.
// Both switches emit PortStatus change notifications.
func (n *Network) SetLinkDown(dpidA uint64, portA uint16, dpidB uint64, portB uint16, down bool) error {
	n.mu.Lock()
	l := n.attached[endpoint{dpid: dpidA, port: portA}]
	if l == nil {
		n.mu.Unlock()
		return fmt.Errorf("netsim: no link at %d/%d", dpidA, portA)
	}
	want := endpoint{dpid: dpidB, port: portB}
	if l.a != want && l.b != want {
		n.mu.Unlock()
		return fmt.Errorf("netsim: link at %d/%d does not reach %d/%d", dpidA, portA, dpidB, portB)
	}
	l.down = down
	swA := n.switches[dpidA]
	swB := n.switches[dpidB]
	n.mu.Unlock()
	if swA != nil {
		swA.setPortLinkState(portA, down)
	}
	if swB != nil {
		swB.setPortLinkState(portB, down)
	}
	return nil
}

// SetPartition fails (or heals) every switch-to-switch link with
// exactly one endpoint inside group, splitting the fabric into two
// islands. Host attachments are untouched — hosts stay reachable within
// their island. Affected switches emit PortStatus notifications, the
// same signal a real bisection would produce.
func (n *Network) SetPartition(group []uint64, down bool) {
	in := make(map[uint64]bool, len(group))
	for _, d := range group {
		in[d] = true
	}
	type affected struct {
		sw   *Switch
		port uint16
	}
	var notify []affected
	n.mu.Lock()
	for _, l := range n.links {
		if l.a.host != "" || l.b.host != "" {
			continue
		}
		if in[l.a.dpid] == in[l.b.dpid] {
			continue
		}
		l.down = down
		if sw := n.switches[l.a.dpid]; sw != nil {
			notify = append(notify, affected{sw, l.a.port})
		}
		if sw := n.switches[l.b.dpid]; sw != nil {
			notify = append(notify, affected{sw, l.b.port})
		}
	}
	n.mu.Unlock()
	for _, a := range notify {
		a.sw.setPortLinkState(a.port, down)
	}
}

// SetSwitchDown fails (or restores) a switch. Failing a switch severs
// its control channel and marks every adjacent link down, so neighbors
// emit PortStatus events — the "switch down" event class the paper's
// equivalence transforms decompose into link downs.
func (n *Network) SetSwitchDown(dpid uint64, down bool) error {
	n.mu.Lock()
	sw, ok := n.switches[dpid]
	if !ok {
		n.mu.Unlock()
		return fmt.Errorf("netsim: no switch %d", dpid)
	}
	type neighbor struct {
		sw   *Switch
		port uint16
	}
	var neighbors []neighbor
	for _, l := range n.links {
		var mine, theirs endpoint
		switch {
		case l.a.dpid == dpid && l.a.host == "":
			mine, theirs = l.a, l.b
		case l.b.dpid == dpid && l.b.host == "":
			mine, theirs = l.b, l.a
		default:
			continue
		}
		_ = mine
		l.down = down
		if theirs.host == "" {
			if other := n.switches[theirs.dpid]; other != nil {
				neighbors = append(neighbors, neighbor{other, theirs.port})
			}
		}
	}
	n.mu.Unlock()

	sw.mu.Lock()
	sw.down = down
	conn := sw.conn
	if down {
		sw.conn = nil
	}
	sw.mu.Unlock()
	if down && conn != nil {
		conn.Close()
	}
	for _, nb := range neighbors {
		nb.sw.setPortLinkState(nb.port, down)
	}
	return nil
}

// Tick runs one expiry pass over all switches; with a FakeClock this
// gives tests deterministic flow timeouts.
func (n *Network) Tick() {
	for _, s := range n.Switches() {
		s.Expire()
	}
}

// ConnectAll attaches every switch to a controller connection obtained
// from dial, typically a net.Pipe pair or a TCP dial to the controller
// listener.
func (n *Network) ConnectAll(dial func(dpid uint64) (*openflow.Conn, error)) error {
	for _, s := range n.Switches() {
		conn, err := dial(s.DPID)
		if err != nil {
			return fmt.Errorf("netsim: dialing for switch %d: %w", s.DPID, err)
		}
		if err := s.Attach(conn); err != nil {
			return err
		}
	}
	return nil
}

// TotalLoopDrops sums loop-drop counters across switches; a nonzero
// value after a quiescent run indicates a forwarding loop.
func (n *Network) TotalLoopDrops() uint64 {
	var total uint64
	for _, s := range n.Switches() {
		total += s.LoopDrops.Load()
	}
	return total
}

// PeerKind classifies what sits at the far end of a link.
type PeerKind int

// Peer kinds for Peer lookups.
const (
	PeerNone PeerKind = iota // nothing wired, or the link is down
	PeerSwitch
	PeerHost
)

// Peer reports what the given switch port is wired to. Links that are
// administratively down report PeerNone, matching what the dataplane
// would experience.
func (n *Network) Peer(dpid uint64, port uint16) (kind PeerKind, peerDPID uint64, peerPort uint16, hostName string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	l := n.attached[endpoint{dpid: dpid, port: port}]
	if l == nil || l.down {
		return PeerNone, 0, 0, ""
	}
	other := l.a
	if other == (endpoint{dpid: dpid, port: port}) {
		other = l.b
	}
	if other.host != "" {
		return PeerHost, 0, 0, other.host
	}
	return PeerSwitch, other.dpid, other.port, ""
}

// PortLive reports whether traffic leaving (dpid, port) can reach a live
// peer: the port exists and is administratively up, the link is up, and
// a switch peer is not failed. Invariant checkers use this to find
// black-holes structurally.
func (n *Network) PortLive(dpid uint64, port uint16) bool {
	sw := n.Switch(dpid)
	if sw == nil || sw.Down() {
		return false
	}
	sw.mu.Lock()
	p, ok := sw.ports[port]
	dead := !ok || p.Desc.Config&openflow.PortConfigDown != 0 || p.Desc.LinkDown()
	sw.mu.Unlock()
	if dead {
		return false
	}
	kind, peerDPID, _, _ := n.Peer(dpid, port)
	switch kind {
	case PeerNone:
		return false
	case PeerSwitch:
		peer := n.Switch(peerDPID)
		return peer != nil && !peer.Down()
	default:
		return true
	}
}
