package appvisor

import (
	"bytes"
	"testing"

	"legosdn/internal/controller"
	"legosdn/internal/openflow"
)

// Fuzz targets for the wire parsers, seeded with valid round-trip
// frames so the corpus starts on the happy path and mutates outward.
// The zero-copy parser is held to the copying parser's behavior.

func FuzzParseDatagram(f *testing.F) {
	seed := func(d *datagram) {
		if b, err := d.marshal(); err == nil {
			f.Add(b)
		}
	}
	seed(&datagram{Type: dgHeartbeat})
	seed(&datagram{Type: dgEventDone, ID: 42, Payload: statusPayload(nil)})
	ev, _ := encodeEvent(pktInEvent(7, 3))
	seed(&datagram{Type: dgEvent, ID: 1, Payload: ev})
	batch, _ := encodeEventBatch([]controller.Event{pktInEvent(1, 1), pktInEvent(2, 2)})
	seed(&datagram{Type: dgEventBatch, ID: 2, Payload: batch})
	f.Add([]byte{})
	f.Add([]byte{0x4c, 0x53, 1, 3})

	f.Fuzz(func(t *testing.T, b []byte) {
		d, err := parseDatagram(b)
		dv, errView := parseDatagramView(b)
		// The two parsers must agree on validity and content.
		if (err == nil) != (errView == nil) {
			t.Fatalf("parsers disagree: %v vs %v", err, errView)
		}
		if err != nil {
			return
		}
		if d.Type != dv.Type || d.ID != dv.ID || !bytes.Equal(d.Payload, dv.Payload) {
			t.Fatalf("view mismatch: %+v vs %+v", d, dv)
		}
		// The copying parser's result must not alias the input.
		if len(b) > headerLen {
			b[headerLen] ^= 0xff
			if bytes.Equal(d.Payload, b[headerLen:]) && len(d.Payload) > 0 {
				t.Fatal("parseDatagram payload aliases input")
			}
		}
	})
}

func FuzzDecodeEvent(f *testing.F) {
	for _, ev := range []controller.Event{
		pktInEvent(1, 1),
		{Seq: 9, Kind: controller.EventSwitchDown, DPID: 4},
		{Seq: 2, Kind: controller.EventFlowRemoved, DPID: 1,
			Message: &openflow.FlowRemoved{Match: openflow.MatchAll(), Priority: 5}},
	} {
		if b, err := encodeEvent(ev); err == nil {
			f.Add(b)
		}
	}
	if b, err := encodeEventBatch([]controller.Event{pktInEvent(1, 1), pktInEvent(2, 2)}); err == nil {
		f.Add(b)
	}
	f.Add([]byte{0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, b []byte) {
		if ev, err := decodeEvent(b); err == nil && ev.Message != nil {
			// A decoded message must re-encode: the stub forwards it on.
			if _, err := encodeEvent(ev); err != nil {
				t.Fatalf("decoded event does not re-encode: %v", err)
			}
		}
		// The batch decoder shares the per-event parser; it must never
		// panic or loop regardless of the claimed count.
		_, _ = decodeEventBatch(b)
	})
}

func FuzzDecodeCrash(f *testing.F) {
	f.Add(encodeCrash("nil deref", "goroutine 1 [running]:"))
	f.Add(appendCrashIndex(encodeCrash("mid-batch", "stack"), 3))
	f.Add(encodeCrash("", ""))
	f.Add([]byte{0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, b []byte) {
		reason, stack, err := decodeCrash(b)
		if err != nil {
			return
		}
		// Round-trip: re-encoding must reproduce a payload the decoder
		// reads back identically (modulo any trailing index bytes).
		reason2, stack2, err := decodeCrash(encodeCrash(reason, stack))
		if err != nil || reason2 != reason || stack2 != stack {
			t.Fatalf("crash round-trip diverged: %q %q %v", reason2, stack2, err)
		}
		_, _ = decodeCrashIndex(b)
	})
}
