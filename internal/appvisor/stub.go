package appvisor

import (
	"fmt"
	"net"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"legosdn/internal/controller"
	"legosdn/internal/openflow"
	"legosdn/internal/trace"
)

// StubOptions tunes a Stub.
type StubOptions struct {
	// HeartbeatInterval spaces liveness beacons (default 50ms).
	HeartbeatInterval time.Duration
	// RequestTimeout bounds the app's synchronous Context calls
	// (default 5s).
	RequestTimeout time.Duration
	// QueueSize bounds queued events (default 256).
	QueueSize int
	// Tracer records the stub-side handler span of each traced event.
	// The span's parent arrives over the wire (wireVersion 3), so the
	// stub — even as a separate process with its own Tracer — joins the
	// trace its proxy started. Nil disables stub-side spans.
	Tracer *trace.Tracer
	// WireFault, when set, intercepts the stub's event acknowledgments
	// (dgEventDone) for fault injection: a dropped ack makes the proxy
	// see a crash for an event the app in fact processed.
	WireFault WireFault
}

func (o *StubOptions) fill() {
	if o.HeartbeatInterval <= 0 {
		o.HeartbeatInterval = 50 * time.Millisecond
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 5 * time.Second
	}
	if o.QueueSize <= 0 {
		o.QueueSize = 256
	}
}

// Stub hosts one SDN-App in an isolated failure domain and bridges it to
// an AppVisor proxy over UDP. The stub is a light-weight wrapper, as the
// paper puts it: it relays events in, converts the app's controller
// calls to RPCs, heartbeats, and — on an app panic — reports the crash
// and dies, exactly as a crashing stub process would.
type Stub struct {
	app  controller.App
	opts StubOptions

	conn *net.UDPConn // connected to the proxy

	mu      sync.Mutex
	waiters map[uint64]chan *datagram

	nextID atomic.Uint64
	events chan stubWork
	dead   atomic.Bool
	done   chan struct{}
	wg     sync.WaitGroup

	// EventsHandled counts events the app processed to completion.
	EventsHandled atomic.Uint64
}

// StartStub launches a stub for app, registering it with the proxy at
// proxyAddr (e.g. "127.0.0.1:7001"). The returned stub is live:
// heartbeats flow and events will be processed in arrival order.
func StartStub(app controller.App, proxyAddr string, opts StubOptions) (*Stub, error) {
	opts.fill()
	raddr, err := net.ResolveUDPAddr("udp", proxyAddr)
	if err != nil {
		return nil, fmt.Errorf("appvisor: resolving proxy address: %w", err)
	}
	conn, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		return nil, fmt.Errorf("appvisor: dialing proxy: %w", err)
	}
	// Fragmented snapshots/restores arrive in bursts; large socket
	// buffers keep loopback UDP from shedding them.
	_ = conn.SetReadBuffer(8 << 20)
	_ = conn.SetWriteBuffer(8 << 20)
	s := &Stub{
		app:     app,
		opts:    opts,
		conn:    conn,
		waiters: make(map[uint64]chan *datagram),
		events:  make(chan stubWork, opts.QueueSize),
		done:    make(chan struct{}),
	}
	reg, err := encodeRegister(app.Name(), app.Subscriptions())
	if err != nil {
		conn.Close()
		return nil, err
	}
	if err := s.send(&datagram{Type: dgRegister, Payload: reg}); err != nil {
		conn.Close()
		return nil, err
	}
	s.wg.Add(3)
	go s.readLoop()
	go s.workLoop()
	go s.heartbeatLoop()
	return s, nil
}

// Alive reports whether the stub (and so the hosted app) is running.
func (s *Stub) Alive() bool { return !s.dead.Load() }

// Kill hard-stops the stub without a crash report, simulating a
// SIGKILL'd stub process. The proxy must discover the death through
// heartbeat loss or RPC timeout.
func (s *Stub) Kill() { s.terminate() }

// terminate stops all stub goroutines and closes the socket.
func (s *Stub) terminate() {
	if !s.dead.CompareAndSwap(false, true) {
		return
	}
	close(s.done)
	s.conn.Close()
	// Fail anything blocked on a Context RPC.
	s.mu.Lock()
	for id, w := range s.waiters {
		close(w)
		delete(s.waiters, id)
	}
	s.mu.Unlock()
}

// die is the wrapper's crash path: report the panic to the proxy, then
// terminate. A real stub process would exit here.
func (s *Stub) die(reason string, stack []byte) {
	s.dieWith(encodeCrash(reason, string(stack)))
}

// dieWith sends a pre-built crash payload (possibly carrying a batch
// index) and terminates.
func (s *Stub) dieWith(payload []byte) {
	_ = s.send(&datagram{Type: dgCrash, Payload: payload})
	s.terminate()
}

func (s *Stub) send(d *datagram) error {
	if f := s.opts.WireFault; f != nil && d.Type == dgEventDone {
		verdict := f("stub", s.app.Name(), d.Type)
		handled, err := applyWireFault(verdict, d,
			s.write,
			func(b []byte) error { _, err := s.conn.Write(b); return err })
		if handled {
			return err
		}
	}
	return s.write(d)
}

func (s *Stub) write(d *datagram) error {
	// Single-frame fast path through a pooled buffer; see Proxy.sendTo.
	if len(d.Payload) <= maxDatagram-headerLen {
		bp := wireBufPool.Get().(*[]byte)
		b, err := appendDatagram((*bp)[:0], d)
		if err == nil {
			*bp = b[:0]
			_, err = s.conn.Write(b)
		}
		wireBufPool.Put(bp)
		return err
	}
	frames, err := marshalFrames(d)
	if err != nil {
		return err
	}
	for _, b := range frames {
		if _, err := s.conn.Write(b); err != nil {
			return err
		}
	}
	return nil
}

func (s *Stub) readLoop() {
	defer s.wg.Done()
	buf := make([]byte, maxDatagram)
	reasm := newReassembler()
	for {
		n, err := s.conn.Read(buf)
		if err != nil {
			return
		}
		// Zero-copy: dv.Payload aliases buf. Events are decoded inline
		// (openflow.Decode copies any bytes it retains); branches that
		// keep the raw payload longer detach() first.
		dv, err := parseDatagramView(buf[:n])
		if err != nil {
			continue
		}
		d, err := reasm.accept(&dv)
		if err != nil || d == nil {
			continue
		}
		switch d.Type {
		case dgRegisterAck:
			// Registration complete; nothing to store stub-side.
		case dgEvent:
			ev, err := decodeEvent(d.Payload)
			if err != nil {
				_ = s.send(&datagram{Type: dgEventDone, ID: d.ID, Payload: statusPayload(err)})
				continue
			}
			s.enqueue(stubWork{evs: []controller.Event{ev}, rpcID: d.ID})
		case dgEventBatch:
			evs, err := decodeEventBatch(d.Payload)
			if err != nil {
				_ = s.send(&datagram{Type: dgEventDone, ID: d.ID, Payload: statusPayload(err)})
				continue
			}
			s.enqueue(stubWork{evs: evs, rpcID: d.ID})
		case dgResponse:
			d.detach() // handed to a waiter, outlives buf
			s.mu.Lock()
			w := s.waiters[d.ID]
			delete(s.waiters, d.ID)
			s.mu.Unlock()
			if w != nil {
				w <- d
			}
		case dgSnapshotReq:
			s.handleSnapshot(d.ID)
		case dgRestoreReq:
			d.detach() // the app's Restore may retain the state bytes
			s.handleRestore(d.ID, d.Payload)
		case dgShutdown:
			s.terminate()
			return
		}
	}
}

// stubWork is one delivery: a single event or a proxy-coalesced batch,
// acknowledged by one dgEventDone under the delivery's RPC id (so the
// same events can be redelivered during replay under a fresh id).
type stubWork struct {
	evs   []controller.Event
	rpcID uint64
}

func (s *Stub) enqueue(w stubWork) {
	select {
	case s.events <- w:
	default:
		_ = s.send(&datagram{Type: dgEventDone, ID: w.rpcID,
			Payload: statusPayload(fmt.Errorf("appvisor: stub queue full"))})
	}
}

func (s *Stub) workLoop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.done:
			return
		case w := <-s.events:
			s.handleWork(w)
		}
	}
}

// handleWork runs the app's handler inside the containment boundary,
// event by event in delivery order. A panic mid-batch reports a crash
// carrying the offending event's batch index, then kills the stub; the
// rest of the batch dies with it, exactly as if each event had been
// delivered separately.
func (s *Stub) handleWork(w stubWork) {
	var firstErr error
	for i, ev := range w.evs {
		var handlerErr error
		sp := s.opts.Tracer.StartSpan(ev.Trace, "stub.handle")
		if sp != nil {
			sp.Attr("app", s.app.Name())
			ev.Trace.SpanID = sp.Context().SpanID
		}
		crashed := func() (crashed bool) {
			defer func() {
				if r := recover(); r != nil {
					crashed = true
					sp.Attr("panic", fmt.Sprint(r))
					sp.End()
					payload := encodeCrash(fmt.Sprint(r), string(debug.Stack()))
					if len(w.evs) > 1 {
						payload = appendCrashIndex(payload, i)
					}
					s.dieWith(payload)
				}
			}()
			handlerErr = s.app.HandleEvent(&stubContext{s: s}, ev)
			return false
		}()
		if crashed {
			return
		}
		sp.End()
		s.EventsHandled.Add(1)
		if handlerErr != nil && firstErr == nil {
			firstErr = handlerErr
		}
	}
	_ = s.send(&datagram{Type: dgEventDone, ID: w.rpcID, Payload: statusPayload(firstErr)})
}

func (s *Stub) handleSnapshot(id uint64) {
	snap, ok := s.app.(controller.Snapshotter)
	if !ok {
		_ = s.send(&datagram{Type: dgSnapshotReply, ID: id,
			Payload: statusPayload(fmt.Errorf("app %q does not snapshot", s.app.Name()))})
		return
	}
	state, err := snap.Snapshot()
	if err != nil {
		_ = s.send(&datagram{Type: dgSnapshotReply, ID: id, Payload: statusPayload(err)})
		return
	}
	payload := append(statusPayload(nil), state...)
	_ = s.send(&datagram{Type: dgSnapshotReply, ID: id, Payload: payload})
}

func (s *Stub) handleRestore(id uint64, state []byte) {
	snap, ok := s.app.(controller.Snapshotter)
	if !ok {
		_ = s.send(&datagram{Type: dgRestoreDone, ID: id,
			Payload: statusPayload(fmt.Errorf("app %q does not snapshot", s.app.Name()))})
		return
	}
	err := snap.Restore(state)
	_ = s.send(&datagram{Type: dgRestoreDone, ID: id, Payload: statusPayload(err)})
}

func (s *Stub) heartbeatLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.opts.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-t.C:
			_ = s.send(&datagram{Type: dgHeartbeat})
		}
	}
}

// rpc performs one synchronous exchange with the proxy.
func (s *Stub) rpc(op uint8, dpid uint64, msg openflow.Message) (*datagram, error) {
	if s.dead.Load() {
		return nil, fmt.Errorf("appvisor: stub is dead")
	}
	payload, err := encodeRequest(op, dpid, msg)
	if err != nil {
		return nil, err
	}
	id := s.nextID.Add(1)
	w := make(chan *datagram, 1)
	s.mu.Lock()
	s.waiters[id] = w
	s.mu.Unlock()
	if err := s.send(&datagram{Type: dgRequest, ID: id, Payload: payload}); err != nil {
		s.mu.Lock()
		delete(s.waiters, id)
		s.mu.Unlock()
		return nil, err
	}
	select {
	case d, ok := <-w:
		if !ok {
			return nil, fmt.Errorf("appvisor: stub terminated mid-call")
		}
		return d, nil
	case <-time.After(s.opts.RequestTimeout):
		s.mu.Lock()
		delete(s.waiters, id)
		s.mu.Unlock()
		return nil, fmt.Errorf("appvisor: proxy call timed out")
	}
}

// stubContext implements controller.Context for the hosted app by
// translating every call into a proxy RPC.
type stubContext struct {
	s *Stub
}

func (c *stubContext) SendMessage(dpid uint64, msg openflow.Message) error {
	d, err := c.s.rpc(opSendMessage, dpid, msg)
	if err != nil {
		return err
	}
	status, _, ok := decodeStatus(d.Payload)
	if !ok {
		return ErrBadDatagram
	}
	return status
}

func (c *stubContext) SendFlowMod(dpid uint64, fm *openflow.FlowMod) error {
	return c.SendMessage(dpid, fm)
}

func (c *stubContext) SendPacketOut(dpid uint64, po *openflow.PacketOut) error {
	return c.SendMessage(dpid, po)
}

func (c *stubContext) RequestStats(dpid uint64, req *openflow.StatsRequest) (*openflow.StatsReply, error) {
	d, err := c.s.rpc(opStats, dpid, req)
	if err != nil {
		return nil, err
	}
	status, rest, ok := decodeStatus(d.Payload)
	if !ok {
		return nil, ErrBadDatagram
	}
	if status != nil {
		return nil, status
	}
	msg, err := openflow.Decode(rest)
	if err != nil {
		return nil, err
	}
	sr, ok := msg.(*openflow.StatsReply)
	if !ok {
		return nil, fmt.Errorf("appvisor: stats answered by %v", msg.Type())
	}
	return sr, nil
}

func (c *stubContext) Barrier(dpid uint64) error {
	d, err := c.s.rpc(opBarrier, dpid, nil)
	if err != nil {
		return err
	}
	status, _, ok := decodeStatus(d.Payload)
	if !ok {
		return ErrBadDatagram
	}
	return status
}

func (c *stubContext) Switches() []uint64 {
	d, err := c.s.rpc(opSwitches, 0, nil)
	if err != nil {
		return nil
	}
	out, err := decodeSwitches(d.Payload)
	if err != nil {
		return nil
	}
	return out
}

func (c *stubContext) Ports(dpid uint64) []openflow.PhyPort {
	d, err := c.s.rpc(opPorts, dpid, nil)
	if err != nil {
		return nil
	}
	out, err := decodePorts(d.Payload)
	if err != nil {
		return nil
	}
	return out
}

func (c *stubContext) Topology() []controller.LinkInfo {
	d, err := c.s.rpc(opTopology, 0, nil)
	if err != nil {
		return nil
	}
	out, err := decodeTopology(d.Payload)
	if err != nil {
		return nil
	}
	return out
}
