package appvisor

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"legosdn/internal/controller"
	"legosdn/internal/flightrec"
	"legosdn/internal/metrics"
	"legosdn/internal/openflow"
	"legosdn/internal/trace"
)

// CrashReason classifies how the proxy learned of an app crash.
type CrashReason int

// Crash detection channels, in order of decreasing information.
const (
	CrashReported  CrashReason = iota // stub wrapper sent a dgCrash report
	CrashHeartbeat                    // heartbeats stopped
	CrashTimeout                      // an event RPC timed out
)

func (r CrashReason) String() string {
	switch r {
	case CrashReported:
		return "reported"
	case CrashHeartbeat:
		return "heartbeat-loss"
	case CrashTimeout:
		return "rpc-timeout"
	default:
		return fmt.Sprintf("reason(%d)", int(r))
	}
}

// CrashReport is the proxy's record of one app crash: the raw material
// for Crash-Pad's recovery decision and the operator problem ticket.
type CrashReport struct {
	App        string
	Reason     CrashReason
	PanicValue string
	Stack      string
	// Event is the event in flight when the crash was detected; by the
	// paper's determinism argument, the likely trigger.
	Event    controller.Event
	HasEvent bool
	Detected time.Time
}

// CrashError is returned by Proxy.HandleEvent when the hosted app died
// processing an event. Crash-Pad unwraps it to drive recovery.
type CrashError struct {
	Report *CrashReport
}

func (e *CrashError) Error() string {
	return fmt.Sprintf("appvisor: app %q crashed (%v): %s", e.Report.App, e.Report.Reason, e.Report.PanicValue)
}

// ErrStubDown is returned for events delivered while no live stub is
// attached (crashed and not yet respawned).
var ErrStubDown = errors.New("appvisor: stub down")

// StubFactory (re)creates the stub hosting the app, pointing it at the
// given proxy address. In-process deployments return StartStub with a
// fresh app instance; subprocess deployments exec cmd/legosdn-stub.
type StubFactory func(proxyAddr string) (StubHandle, error)

// StubHandle is the proxy's grip on a running stub.
type StubHandle interface {
	// Kill force-stops the stub.
	Kill()
	// Alive reports liveness as known locally (subprocess handles may
	// only know whether the process has been reaped).
	Alive() bool
}

// InProcessFactory adapts an app constructor to a StubFactory using
// goroutine-domain stubs.
func InProcessFactory(newApp func() controller.App, opts StubOptions) StubFactory {
	return func(proxyAddr string) (StubHandle, error) {
		return StartStub(newApp(), proxyAddr, opts)
	}
}

// ProxyOptions tunes a Proxy.
type ProxyOptions struct {
	// EventTimeout bounds one event round-trip before the app is
	// declared crashed (default 2s).
	EventTimeout time.Duration
	// HeartbeatTimeout is the silence window after which the stub is
	// declared dead (default 500ms). Negative disables heartbeat
	// monitoring (normalized to zero, the internal "disabled" value).
	HeartbeatTimeout time.Duration
	// RegisterTimeout bounds the initial stub registration (default 5s).
	RegisterTimeout time.Duration
	// RespawnBackoff schedules the retries when a replacement stub
	// fails to come up; zero-value fields select the defaults (50ms
	// base, 5s cap, 5 attempts, jittered).
	RespawnBackoff Backoff
	// OnCrash observes every detected crash (problem tickets hook here).
	OnCrash func(*CrashReport)
	// Metrics, when set, registers the proxy's instruments (RPC
	// round-trip latency, timeouts, heartbeat gaps, crashes by reason)
	// labeled with the app name.
	Metrics *metrics.Registry
	// Tracer records the proxy-side relay span of each traced event's
	// stub round trip. Nil disables.
	Tracer *trace.Tracer
	// Flight is the always-on flight recorder: stub lifecycle (crash
	// detections, respawns, kills) leaves bounded structured records for
	// autopsies. Never written on the per-event relay path. Nil no-ops.
	Flight *flightrec.Recorder
}

func (o *ProxyOptions) fill() {
	if o.EventTimeout <= 0 {
		o.EventTimeout = 2 * time.Second
	}
	switch {
	case o.HeartbeatTimeout < 0:
		// Disabled. A raw negative must not survive normalization: any
		// later "gap > HeartbeatTimeout" comparison would be true for
		// every gap, declaring a perfectly live stub dead immediately
		// (and a negative tick interval would panic the monitor).
		o.HeartbeatTimeout = 0
	case o.HeartbeatTimeout == 0:
		o.HeartbeatTimeout = 500 * time.Millisecond
	}
	if o.RegisterTimeout <= 0 {
		o.RegisterTimeout = 5 * time.Second
	}
}

// Proxy is the controller-resident half of AppVisor. It is a regular
// controller.App — the controller needs no modification to host
// isolated apps, which is the paper's headline design constraint — and
// it is a controller.Snapshotter, forwarding checkpoint operations to
// the stub.
type Proxy struct {
	name string
	ctx  controller.Context
	opts ProxyOptions

	conn    *net.UDPConn
	factory StubFactory

	mu         sync.Mutex
	stub       StubHandle
	stubAddr   *net.UDPAddr
	subs       []controller.EventKind
	waiters    map[uint64]chan *datagram
	registered chan struct{}
	lastCrash  *CrashReport

	nextID   atomic.Uint64
	lastBeat atomic.Int64 // unix nanos of last heartbeat
	stubUp   atomic.Bool
	inFlight atomic.Pointer[controller.Event]
	closed   atomic.Bool
	done     chan struct{}
	wfault   atomic.Pointer[WireFault]

	// EventsRelayed counts events round-tripped through the stub.
	EventsRelayed metrics.Counter
	// CrashesDetected counts crash detections by any signal.
	CrashesDetected metrics.Counter

	// Per-app instruments, nil without ProxyOptions.Metrics.
	rpcLatency     *metrics.Histogram
	rpcTimeouts    *metrics.Counter
	heartbeatGap   *metrics.Histogram
	respawnRetries *metrics.Counter
	crashBy        [3]*metrics.Counter // indexed by CrashReason
}

// NewProxy creates the proxy, binds its UDP socket, launches a stub via
// factory and waits for the stub to register. name is used until the
// stub's registration supplies the authoritative app name.
func NewProxy(name string, ctx controller.Context, factory StubFactory, opts ProxyOptions) (*Proxy, error) {
	opts.fill()
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, fmt.Errorf("appvisor: binding proxy socket: %w", err)
	}
	// Fragmented snapshots/restores arrive in bursts; large socket
	// buffers keep loopback UDP from shedding them.
	_ = conn.SetReadBuffer(8 << 20)
	_ = conn.SetWriteBuffer(8 << 20)
	p := &Proxy{
		name:       name,
		ctx:        ctx,
		opts:       opts,
		conn:       conn,
		factory:    factory,
		waiters:    make(map[uint64]chan *datagram),
		registered: make(chan struct{}),
		done:       make(chan struct{}),
	}
	if reg := opts.Metrics; reg != nil {
		label := fmt.Sprintf("{app=%q}", name)
		reg.RegisterCounter("legosdn_appvisor_events_relayed_total"+label,
			"events round-tripped through the stub", &p.EventsRelayed)
		reg.RegisterCounter("legosdn_appvisor_crashes_detected_total"+label,
			"crash detections by any signal", &p.CrashesDetected)
		p.rpcLatency = reg.Histogram("legosdn_appvisor_rpc_seconds"+label,
			"proxy-to-stub RPC round-trip latency", nil)
		p.rpcTimeouts = reg.Counter("legosdn_appvisor_rpc_timeouts_total"+label,
			"proxy-to-stub RPCs that hit their deadline")
		p.heartbeatGap = reg.Histogram("legosdn_appvisor_heartbeat_gap_seconds"+label,
			"silence between consecutive stub heartbeats", nil)
		p.respawnRetries = reg.Counter("legosdn_appvisor_respawn_retries_total"+label,
			"respawn attempts beyond the first, over all recoveries")
		for _, r := range []CrashReason{CrashReported, CrashHeartbeat, CrashTimeout} {
			p.crashBy[r] = reg.Counter(
				fmt.Sprintf("legosdn_appvisor_crashes_total{app=%q,reason=%q}", name, r.String()),
				"crash detections by signal")
		}
	}
	go p.readLoop()
	if p.opts.HeartbeatTimeout > 0 {
		go p.monitorLoop()
	}
	if err := p.spawn(); err != nil {
		p.Close()
		return nil, err
	}
	return p, nil
}

// Addr returns the proxy's UDP address, for externally launched stubs.
func (p *Proxy) Addr() string { return p.conn.LocalAddr().String() }

// Close shuts the proxy and its stub down.
func (p *Proxy) Close() {
	if !p.closed.CompareAndSwap(false, true) {
		return
	}
	close(p.done)
	p.mu.Lock()
	stub := p.stub
	addr := p.stubAddr
	p.mu.Unlock()
	if addr != nil {
		_ = p.sendTo(addr, &datagram{Type: dgShutdown})
	}
	if stub != nil {
		stub.Kill()
	}
	p.conn.Close()
}

// spawn launches a stub and waits for registration.
func (p *Proxy) spawn() error {
	p.mu.Lock()
	p.registered = make(chan struct{})
	reg := p.registered
	p.mu.Unlock()
	stub, err := p.factory(p.Addr())
	if err != nil {
		return fmt.Errorf("appvisor: stub factory: %w", err)
	}
	p.mu.Lock()
	p.stub = stub
	p.mu.Unlock()
	select {
	case <-reg:
		p.lastBeat.Store(time.Now().UnixNano())
		p.stubUp.Store(true)
		return nil
	case <-time.After(p.opts.RegisterTimeout):
		stub.Kill()
		return fmt.Errorf("appvisor: stub for %q never registered", p.name)
	}
}

// Respawn replaces a dead stub with a fresh one. Crash-Pad invokes this
// before restoring a checkpoint. A replacement that itself fails to
// come up is retried on the options' bounded, jittered exponential
// backoff rather than abandoning the app after one try.
func (p *Proxy) Respawn() error {
	p.mu.Lock()
	old := p.stub
	p.mu.Unlock()
	if old != nil {
		old.Kill()
	}
	b := p.opts.RespawnBackoff
	b.fill()
	var err error
	for attempt := 0; attempt < b.Attempts; attempt++ {
		if attempt > 0 {
			b.Sleep(b.Delay(attempt - 1))
			p.respawnRetries.Inc()
		}
		if p.closed.Load() {
			return fmt.Errorf("appvisor: proxy for %q closed during respawn", p.name)
		}
		if err = p.spawn(); err == nil {
			p.opts.Flight.Record(flightrec.Record{
				Layer: flightrec.LayerAppVisor, Kind: flightrec.KindStubRespawn,
				App: p.Name(), Note: fmt.Sprintf("attempt %d", attempt+1),
			})
			return nil
		}
	}
	return fmt.Errorf("appvisor: respawn for %q gave up after %d attempts: %w",
		p.name, b.Attempts, err)
}

// StubUp reports whether a live stub is currently attached.
func (p *Proxy) StubUp() bool { return p.stubUp.Load() }

// KillStub hard-stops the attached stub without telling the proxy —
// simulating a SIGKILL'd stub process mid-event. Detection must come
// from the regular crash signals (heartbeat loss or RPC timeout), and
// recovery from Crash-Pad's usual Respawn path. Chaos harnesses use
// this; it is a no-op when no stub is attached.
func (p *Proxy) KillStub() {
	p.mu.Lock()
	stub := p.stub
	p.mu.Unlock()
	if stub != nil {
		stub.Kill()
		p.opts.Flight.Record(flightrec.Record{
			Layer: flightrec.LayerAppVisor, Kind: flightrec.KindStubKill,
			App: p.Name(), Note: "chaos kill",
		})
	}
}

// SetWireFault installs (or, with nil, removes) a datagram fault
// injector on the proxy's event sends (dgEvent/dgEventBatch). Safe to
// call while the proxy is live.
func (p *Proxy) SetWireFault(f WireFault) {
	if f == nil {
		p.wfault.Store(nil)
		return
	}
	p.wfault.Store(&f)
}

// LastCrash returns the most recent crash report, or nil.
func (p *Proxy) LastCrash() *CrashReport {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.lastCrash
}

// Name implements controller.App.
func (p *Proxy) Name() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.name
}

// Subscriptions implements controller.App, reflecting whatever the stub
// registered.
func (p *Proxy) Subscriptions() []controller.EventKind {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.subs == nil {
		return controller.AllEventKinds()
	}
	return append([]controller.EventKind(nil), p.subs...)
}

// HandleEvent implements controller.App: it round-trips the event
// through the stub, preserving the controller's processing order, and
// surfaces any crash as a *CrashError.
func (p *Proxy) HandleEvent(_ controller.Context, ev controller.Event) error {
	if !p.stubUp.Load() {
		return ErrStubDown
	}
	p.inFlight.Store(&ev)
	defer p.inFlight.Store(nil)

	// The relay span covers encode → UDP → stub handler → ack; the stub
	// opens its own child span from the wire-propagated context.
	if sp := p.opts.Tracer.StartSpan(ev.Trace, "appvisor.relay"); sp != nil {
		sp.Attr("app", p.Name())
		ev.Trace.SpanID = sp.Context().SpanID
		defer sp.End()
	}
	payload, err := encodeEvent(ev)
	if err != nil {
		return err
	}
	d, err := p.rpcToStub(&datagram{Type: dgEvent, ID: p.nextID.Add(1), Payload: payload}, p.opts.EventTimeout)
	if err != nil {
		// Timeout or socket failure: communication failure is crash
		// detection signal #1 in §4.1.
		report := p.noteCrash(CrashTimeout, err.Error(), "", &ev)
		return &CrashError{Report: report}
	}
	if d.Type == dgCrash {
		reason, stack, _ := decodeCrash(d.Payload)
		report := p.noteCrash(CrashReported, reason, stack, &ev)
		return &CrashError{Report: report}
	}
	status, _, ok := decodeStatus(d.Payload)
	if !ok {
		return ErrBadDatagram
	}
	p.EventsRelayed.Add(1)
	return status
}

// HandleEventBatch implements controller.BatchApp: N events ride one
// dgEventBatch datagram and one dgEventDone ack, so a queued backlog
// costs one UDP round trip instead of N. The stub processes the batch
// in order; an indexed crash report pins the blame on the exact event.
func (p *Proxy) HandleEventBatch(_ controller.Context, evs []controller.Event) error {
	if len(evs) == 0 {
		return nil
	}
	if len(evs) == 1 {
		return p.HandleEvent(nil, evs[0])
	}
	if !p.stubUp.Load() {
		return ErrStubDown
	}
	p.inFlight.Store(&evs[0])
	defer p.inFlight.Store(nil)

	// One relay span for the whole batched round trip; each traced
	// event is re-parented under it so stub-side handler spans nest
	// correctly even when only some batch members are sampled.
	if sp := p.opts.Tracer.StartSpan(evs[0].Trace, "appvisor.relay_batch"); sp != nil {
		sp.Attr("app", p.Name()).AttrInt("batch", int64(len(evs)))
		for i := range evs {
			if evs[i].Trace.Valid() {
				evs[i].Trace.SpanID = sp.Context().SpanID
			}
		}
		defer sp.End()
	}
	payload, err := encodeEventBatch(evs)
	if err != nil {
		return err
	}
	// The per-event budget scales with the batch: a full batch is N
	// sequential handler runs on the stub side.
	timeout := time.Duration(len(evs)) * p.opts.EventTimeout
	d, err := p.rpcToStub(&datagram{Type: dgEventBatch, ID: p.nextID.Add(1), Payload: payload}, timeout)
	if err != nil {
		report := p.noteCrash(CrashTimeout, err.Error(), "", &evs[0])
		return &CrashError{Report: report}
	}
	if d.Type == dgCrash {
		reason, stack, _ := decodeCrash(d.Payload)
		culprit := &evs[0]
		if idx, ok := decodeCrashIndex(d.Payload); ok && idx < len(evs) {
			culprit = &evs[idx]
		}
		report := p.noteCrash(CrashReported, reason, stack, culprit)
		return &CrashError{Report: report}
	}
	status, _, ok := decodeStatus(d.Payload)
	if !ok {
		return ErrBadDatagram
	}
	p.EventsRelayed.Add(uint64(len(evs)))
	return status
}

// Snapshot implements controller.Snapshotter by RPC to the stub.
func (p *Proxy) Snapshot() ([]byte, error) {
	if !p.stubUp.Load() {
		return nil, ErrStubDown
	}
	d, err := p.rpcToStub(&datagram{Type: dgSnapshotReq, ID: p.nextID.Add(1)}, p.opts.EventTimeout)
	if err != nil {
		return nil, err
	}
	if d.Type == dgCrash {
		return nil, fmt.Errorf("appvisor: app crashed during snapshot")
	}
	status, rest, ok := decodeStatus(d.Payload)
	if !ok {
		return nil, ErrBadDatagram
	}
	if status != nil {
		return nil, status
	}
	return rest, nil
}

// Restore implements controller.Snapshotter by RPC to the stub.
func (p *Proxy) Restore(state []byte) error {
	if !p.stubUp.Load() {
		return ErrStubDown
	}
	d, err := p.rpcToStub(&datagram{Type: dgRestoreReq, ID: p.nextID.Add(1), Payload: state}, p.opts.EventTimeout)
	if err != nil {
		return err
	}
	if d.Type == dgCrash {
		return fmt.Errorf("appvisor: app crashed during restore")
	}
	status, _, ok := decodeStatus(d.Payload)
	if !ok {
		return ErrBadDatagram
	}
	return status
}

// noteCrash records a crash, fires the OnCrash hook and marks the stub
// down so subsequent events fail fast.
func (p *Proxy) noteCrash(reason CrashReason, panicValue, stack string, ev *controller.Event) *CrashReport {
	report := &CrashReport{
		App:        p.Name(),
		Reason:     reason,
		PanicValue: panicValue,
		Stack:      stack,
		Detected:   time.Now(),
	}
	if ev != nil {
		report.Event = *ev
		report.HasEvent = true
	}
	p.stubUp.Store(false)
	p.CrashesDetected.Add(1)
	if int(reason) < len(p.crashBy) {
		p.crashBy[reason].Inc()
	}
	rec := flightrec.Record{
		Layer: flightrec.LayerAppVisor, Kind: flightrec.KindCrashDetected,
		App: report.App, Note: reason.String(),
	}
	if ev != nil {
		rec.Trace = ev.Trace.TraceID
		rec.EvSeq = ev.Seq
		rec.DPID = ev.DPID
	}
	p.opts.Flight.Record(rec)
	p.mu.Lock()
	p.lastCrash = report
	stub := p.stub
	p.mu.Unlock()
	if stub != nil {
		stub.Kill() // make death certain before a respawn
	}
	if p.opts.OnCrash != nil {
		p.opts.OnCrash(report)
	}
	return report
}

// monitorLoop watches heartbeats; silence beyond HeartbeatTimeout is
// crash detection signal #2.
func (p *Proxy) monitorLoop() {
	t := time.NewTicker(p.opts.HeartbeatTimeout / 4)
	defer t.Stop()
	for {
		select {
		case <-p.done:
			return
		case <-t.C:
			if !p.stubUp.Load() {
				continue
			}
			last := p.lastBeat.Load()
			if last == 0 {
				continue
			}
			if time.Since(time.Unix(0, last)) > p.opts.HeartbeatTimeout {
				ev := p.inFlight.Load()
				report := p.noteCrash(CrashHeartbeat, "heartbeat lost", "", ev)
				_ = report
				p.failWaiters()
			}
		}
	}
}

// failWaiters unblocks every pending RPC after a detected death.
func (p *Proxy) failWaiters() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for id, w := range p.waiters {
		close(w)
		delete(p.waiters, id)
	}
}

func (p *Proxy) sendTo(addr *net.UDPAddr, d *datagram) error {
	if fp := p.wfault.Load(); fp != nil && (d.Type == dgEvent || d.Type == dgEventBatch) {
		verdict := (*fp)("proxy", p.Name(), d.Type)
		handled, err := applyWireFault(verdict, d,
			func(dd *datagram) error { return p.writeDatagram(addr, dd) },
			func(b []byte) error { _, err := p.conn.WriteToUDP(b, addr); return err })
		if handled {
			return err
		}
	}
	return p.writeDatagram(addr, d)
}

func (p *Proxy) writeDatagram(addr *net.UDPAddr, d *datagram) error {
	// Fast path: single-frame datagrams (all of steady-state event
	// traffic) are framed into a pooled buffer, so sending allocates
	// nothing. Oversized payloads fall back to fragmentation.
	if len(d.Payload) <= maxDatagram-headerLen {
		bp := wireBufPool.Get().(*[]byte)
		b, err := appendDatagram((*bp)[:0], d)
		if err == nil {
			*bp = b[:0] // keep any growth for the next send
			_, err = p.conn.WriteToUDP(b, addr)
		}
		wireBufPool.Put(bp)
		return err
	}
	frames, err := marshalFrames(d)
	if err != nil {
		return err
	}
	for _, b := range frames {
		if _, err := p.conn.WriteToUDP(b, addr); err != nil {
			return err
		}
	}
	return nil
}

// rpcToStub sends one datagram and waits for its completion (matched by
// ID) or a crash report.
func (p *Proxy) rpcToStub(d *datagram, timeout time.Duration) (*datagram, error) {
	p.mu.Lock()
	addr := p.stubAddr
	if addr == nil {
		p.mu.Unlock()
		return nil, ErrStubDown
	}
	w := make(chan *datagram, 1)
	p.waiters[d.ID] = w
	p.mu.Unlock()

	cleanup := func() {
		p.mu.Lock()
		delete(p.waiters, d.ID)
		p.mu.Unlock()
	}
	start := time.Now()
	if err := p.sendTo(addr, d); err != nil {
		cleanup()
		return nil, err
	}
	select {
	case reply, ok := <-w:
		if !ok {
			return nil, fmt.Errorf("appvisor: stub died mid-call")
		}
		p.rpcLatency.ObserveSince(start)
		return reply, nil
	case <-time.After(timeout):
		cleanup()
		p.rpcTimeouts.Inc()
		return nil, fmt.Errorf("appvisor: stub call timed out after %v", timeout)
	case <-p.done:
		cleanup()
		return nil, fmt.Errorf("appvisor: proxy closed")
	}
}

func (p *Proxy) readLoop() {
	buf := make([]byte, maxDatagram)
	reasm := newReassembler()
	for {
		n, raddr, err := p.conn.ReadFromUDP(buf)
		if err != nil {
			return
		}
		// Zero-copy: dv.Payload aliases buf. Branches that retain the
		// datagram past this iteration (waiter hand-offs, goroutines)
		// detach() first; the reassembler copies fragment data itself.
		dv, err := parseDatagramView(buf[:n])
		if err != nil {
			continue
		}
		d, err := reasm.accept(&dv)
		if err != nil || d == nil {
			continue
		}
		switch d.Type {
		case dgRegister:
			name, subs, err := decodeRegister(d.Payload)
			if err != nil {
				continue
			}
			p.mu.Lock()
			// While a stub is live, only it may re-register: a stray
			// datagram must not hijack the stub address. A dead stub's
			// replacement legitimately arrives from a new address.
			if p.stubUp.Load() && p.stubAddr != nil && p.stubAddr.String() != raddr.String() {
				p.mu.Unlock()
				continue
			}
			p.name = name
			p.subs = subs
			p.stubAddr = raddr
			reg := p.registered
			p.mu.Unlock()
			p.lastBeat.Store(time.Now().UnixNano())
			_ = p.sendTo(raddr, &datagram{Type: dgRegisterAck})
			select {
			case <-reg:
			default:
				close(reg)
			}
		case dgHeartbeat:
			now := time.Now()
			if last := p.lastBeat.Load(); last != 0 && p.heartbeatGap != nil {
				p.heartbeatGap.ObserveDuration(now.Sub(time.Unix(0, last)))
			}
			p.lastBeat.Store(now.UnixNano())
		case dgEventDone, dgSnapshotReply, dgRestoreDone:
			d.detach() // handed to a waiter, outlives buf
			p.completeWaiter(d)
		case dgCrash:
			// A crash aborts whatever RPC is in flight; if none is, the
			// report stands alone (e.g. crash in a background goroutine
			// of the app).
			d.detach()
			if !p.completeAnyWaiter(d) {
				reason, stack, _ := decodeCrash(d.Payload)
				p.noteCrash(CrashReported, reason, stack, p.inFlight.Load())
			}
		case dgRequest:
			d.detach()
			go p.serveRequest(raddr, d)
		}
	}
}

func (p *Proxy) completeWaiter(d *datagram) {
	p.mu.Lock()
	w := p.waiters[d.ID]
	delete(p.waiters, d.ID)
	p.mu.Unlock()
	if w != nil {
		w <- d
	}
}

// completeAnyWaiter delivers a crash datagram to some pending waiter
// (there is at most one event in flight, which is the one that matters).
func (p *Proxy) completeAnyWaiter(d *datagram) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	for id, w := range p.waiters {
		delete(p.waiters, id)
		w <- d
		return true
	}
	return false
}

// serveRequest executes one Context call on the app's behalf.
func (p *Proxy) serveRequest(raddr *net.UDPAddr, d *datagram) {
	op, dpid, msg, err := decodeRequest(d.Payload)
	if err != nil {
		_ = p.sendTo(raddr, &datagram{Type: dgResponse, ID: d.ID, Payload: statusPayload(err)})
		return
	}
	var payload []byte
	switch op {
	case opSendMessage:
		payload = statusPayload(p.ctx.SendMessage(dpid, msg))
	case opStats:
		req, ok := msg.(*openflow.StatsRequest)
		if !ok {
			payload = statusPayload(fmt.Errorf("appvisor: stats op without request"))
			break
		}
		reply, err := p.ctx.RequestStats(dpid, req)
		if err != nil {
			payload = statusPayload(err)
			break
		}
		raw, err := openflow.Encode(reply)
		if err != nil {
			payload = statusPayload(err)
			break
		}
		payload = append(statusPayload(nil), raw...)
	case opBarrier:
		payload = statusPayload(p.ctx.Barrier(dpid))
	case opSwitches:
		payload, err = encodeSwitches(p.ctx.Switches())
		if err != nil {
			payload = statusPayload(err)
		}
	case opPorts:
		payload = encodePorts(p.ctx.Ports(dpid))
	case opTopology:
		payload, err = encodeTopology(p.ctx.Topology())
		if err != nil {
			payload = statusPayload(err)
		}
	default:
		payload = statusPayload(fmt.Errorf("appvisor: unknown op %d", op))
	}
	_ = p.sendTo(raddr, &datagram{Type: dgResponse, ID: d.ID, Payload: payload})
}
