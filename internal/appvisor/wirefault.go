package appvisor

import "time"

// WireAction is the fate a WireFault assigns to one outgoing datagram.
type WireAction int

// Wire fault actions. The datagram-level faults model exactly what
// loopback UDP can legally do to the proxy/stub path: shed a datagram,
// deliver it twice, deliver it late (and therefore out of order
// relative to later traffic), or mangle it in flight.
const (
	// WirePass delivers the datagram normally (combine with
	// WireVerdict.Delay for a late, possibly reordered delivery).
	WirePass WireAction = iota
	// WireDrop sheds the datagram silently.
	WireDrop
	// WireDup delivers the datagram twice back to back.
	WireDup
	// WireCorrupt flips the leading header byte so the receiver rejects
	// the frame outright — a datagram that failed its checksum.
	WireCorrupt
)

// WireVerdict is a WireFault's decision for one datagram.
type WireVerdict struct {
	Action WireAction
	// Delay, when nonzero and the action is WirePass, detaches the send
	// onto its own goroutine and delivers after the delay, letting later
	// datagrams overtake it.
	Delay time.Duration
}

// WireFault intercepts outgoing event-path datagrams (dgEvent and
// dgEventBatch on the proxy side, dgEventDone on the stub side) before
// they hit the socket. origin is "proxy" or "stub"; app is the hosted
// app's name. Implementations must be safe for concurrent use and must
// not block: the hook runs on the sender's goroutine.
type WireFault func(origin, app string, dgType uint8) WireVerdict

// applyWireFault executes v for datagram d. write emits a framed
// datagram; writeRaw emits pre-framed bytes (for corruption). handled
// reports that the fault path consumed the send and the caller must not
// write the datagram again.
func applyWireFault(v WireVerdict, d *datagram, write func(*datagram) error, writeRaw func([]byte) error) (handled bool, err error) {
	switch v.Action {
	case WireDrop:
		return true, nil
	case WireDup:
		if err := write(d); err != nil {
			return true, err
		}
		return true, write(d)
	case WireCorrupt:
		b, err := appendDatagram(nil, d)
		if err != nil {
			// Oversized payloads cannot be single-framed; shedding the
			// datagram is the closest legal corruption.
			return true, nil
		}
		b[0] ^= 0xFF
		return true, writeRaw(b)
	}
	if v.Delay > 0 {
		cp := *d
		cp.Payload = append([]byte(nil), d.Payload...)
		go func() {
			time.Sleep(v.Delay)
			_ = write(&cp)
		}()
		return true, nil
	}
	return false, nil
}
