package appvisor

import (
	"errors"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"legosdn/internal/controller"
	"legosdn/internal/openflow"
)

// buildStubBinary compiles cmd/legosdn-stub into a temp dir once per
// test run.
func buildStubBinary(t *testing.T) string {
	t.Helper()
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain unavailable")
	}
	bin := filepath.Join(t.TempDir(), "legosdn-stub")
	cmd := exec.Command("go", "build", "-o", bin, "legosdn/cmd/legosdn-stub")
	cmd.Dir = moduleRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building stub binary: %v\n%s", err, out)
	}
	return bin
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatalf("go env GOMOD: %v", err)
	}
	return filepath.Dir(string(out[:len(out)-1]))
}

// TestSubprocessStubEndToEnd runs a genuine separate-process stub — the
// paper's actual deployment shape — and exercises event relay, crash
// detection and respawn across a real process boundary.
func TestSubprocessStubEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary; skipped in -short")
	}
	bin := buildStubBinary(t)
	ctx := &fakeCtx{}
	p, err := NewProxy("learning-switch", ctx,
		SubprocessFactory(bin, "learning-switch"),
		ProxyOptions{RegisterTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	if p.Name() != "learning-switch" {
		t.Fatalf("registered name %q", p.Name())
	}
	handle := func() *SubprocessHandle {
		p.mu.Lock()
		defer p.mu.Unlock()
		return p.stub.(*SubprocessHandle)
	}()
	if handle.Pid() == 0 {
		t.Fatal("stub process has no pid")
	}

	// Relay a packet-in through the process boundary: the learning
	// switch floods unknown destinations via a PacketOut command.
	ev := controller.Event{
		Seq: 1, Kind: controller.EventPacketIn, DPID: 1,
		Message: &openflow.PacketIn{
			BufferID: openflow.BufferIDNone,
			InPort:   3,
			Data: append(append([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff},
				0x02, 0, 0, 0, 0, 1), 0x08, 0x00),
		},
	}
	if err := p.HandleEvent(nil, ev); err != nil {
		t.Fatalf("event relay: %v", err)
	}
	if ctx.sentCount() != 1 {
		t.Fatalf("commands relayed = %d", ctx.sentCount())
	}

	// Snapshot over the process boundary.
	if _, err := p.Snapshot(); err != nil {
		t.Fatalf("snapshot: %v", err)
	}

	// Kill the process; heartbeat loss must flag the crash, and respawn
	// must bring a new process up.
	handle.Kill()
	deadline := time.Now().Add(5 * time.Second)
	for p.StubUp() {
		if time.Now().After(deadline) {
			t.Fatal("process death never detected")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := p.Respawn(); err != nil {
		t.Fatalf("respawn: %v", err)
	}
	if err := p.HandleEvent(nil, ev); err != nil {
		var ce *CrashError
		if errors.As(err, &ce) {
			t.Fatalf("respawned stub crashed: %v", err)
		}
		t.Fatalf("post-respawn event: %v", err)
	}
}
