// Package appvisor implements LegoSDN's isolation layer (§3.1, §4.1 of
// the paper): each SDN-App runs inside a Stub — a wrapper holding the
// app in its own failure domain — while a Proxy runs inside the
// controller as a regular SDN-App. Proxy and stub speak a compact RPC
// protocol over UDP, exactly as the paper's FloodLight prototype does.
//
// The stub relays events to the app and converts the app's controller
// calls (FlowMod, PacketOut, stats, topology queries) back into RPCs.
// The proxy detects app crashes through three signals: an explicit
// crash report from the stub wrapper, heartbeat loss, and RPC timeouts.
// Stubs run either in-process (a goroutine domain whose panics are
// contained, the default for tests and benchmarks) or as genuinely
// separate OS processes via cmd/legosdn-stub.
package appvisor

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"legosdn/internal/controller"
	"legosdn/internal/openflow"
)

// Datagram types.
const (
	dgRegister      uint8 = 1  // stub -> proxy: app name + subscriptions
	dgRegisterAck   uint8 = 2  // proxy -> stub
	dgEvent         uint8 = 3  // proxy -> stub: deliver one controller event
	dgEventDone     uint8 = 4  // stub -> proxy: event processed (or handler error)
	dgRequest       uint8 = 5  // stub -> proxy: synchronous Context call
	dgResponse      uint8 = 6  // proxy -> stub: Context call result
	dgHeartbeat     uint8 = 7  // stub -> proxy: liveness beacon
	dgSnapshotReq   uint8 = 8  // proxy -> stub: serialize app state
	dgSnapshotReply uint8 = 9  // stub -> proxy
	dgRestoreReq    uint8 = 10 // proxy -> stub: load app state
	dgRestoreDone   uint8 = 11 // stub -> proxy
	dgShutdown      uint8 = 12 // proxy -> stub: exit cleanly
	dgCrash         uint8 = 13 // stub -> proxy: app crashed (wrapper's last gasp)
	dgEventBatch    uint8 = 14 // proxy -> stub: deliver N events, one dgEventDone ack
)

// Context call opcodes carried by dgRequest.
const (
	opSendMessage uint8 = 1
	opStats       uint8 = 2
	opBarrier     uint8 = 3
	opSwitches    uint8 = 4
	opPorts       uint8 = 5
	opTopology    uint8 = 6
)

const (
	wireMagic uint16 = 0x4c53 // "LS"
	// wireVersion 2 added dgEventBatch (batched event delivery with a
	// single ack) and codec bounds checks. Version 3 widens the event
	// payload with the trace and span ids (16 bytes between seq and the
	// message flag), so a stub process joins the trace its proxy
	// started. The header layout is unchanged.
	wireVersion uint8 = 3
	headerLen         = 12
	// maxDatagram bounds a single UDP payload; events larger than this
	// (possible only with pathological PacketIn payloads) are rejected.
	maxDatagram = 60 * 1024
)

// ErrBadDatagram reports a malformed or foreign datagram.
var ErrBadDatagram = errors.New("appvisor: bad datagram")

// WireVersion is the AppVisor RPC protocol version, exported for the
// build-info gauge and startup logging.
const WireVersion = wireVersion

// datagram is one framed RPC message.
type datagram struct {
	Type    uint8
	ID      uint64 // RPC correlation id; 0 for one-way messages
	Payload []byte
}

func (d *datagram) marshal() ([]byte, error) {
	if len(d.Payload) > maxDatagram-headerLen {
		return nil, fmt.Errorf("appvisor: datagram payload %d too large", len(d.Payload))
	}
	b, err := appendDatagram(make([]byte, 0, headerLen+len(d.Payload)), d)
	if err != nil {
		return nil, err
	}
	return b, nil
}

// appendDatagram frames d onto dst and returns the extended slice. The
// allocation-free complement to marshal for pooled send buffers.
func appendDatagram(dst []byte, d *datagram) ([]byte, error) {
	if len(d.Payload) > maxDatagram-headerLen {
		return nil, fmt.Errorf("appvisor: datagram payload %d too large", len(d.Payload))
	}
	dst = binary.BigEndian.AppendUint16(dst, wireMagic)
	dst = append(dst, wireVersion, d.Type)
	dst = binary.BigEndian.AppendUint64(dst, d.ID)
	return append(dst, d.Payload...), nil
}

// wireBufPool recycles send buffers for the single-frame fast path, so
// steady-state event traffic allocates nothing for framing.
var wireBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 2048)
		return &b
	},
}

// parseDatagram decodes one frame, copying the payload so the result
// outlives b. Prefer parseDatagramView in receive loops.
func parseDatagram(b []byte) (*datagram, error) {
	d, err := parseDatagramView(b)
	if err != nil {
		return nil, err
	}
	d.detach()
	return &d, nil
}

// parseDatagramView decodes one frame without copying: the returned
// datagram's Payload aliases b and is only valid until b is reused.
// Receive loops use this to decode events straight out of the socket
// buffer; any branch that retains the payload past the current
// iteration (waiter hand-offs, goroutines, reassembly) must detach()
// first.
func parseDatagramView(b []byte) (datagram, error) {
	if len(b) < headerLen {
		return datagram{}, ErrBadDatagram
	}
	if binary.BigEndian.Uint16(b[0:2]) != wireMagic || b[2] != wireVersion {
		return datagram{}, ErrBadDatagram
	}
	return datagram{
		Type:    b[3],
		ID:      binary.BigEndian.Uint64(b[4:12]),
		Payload: b[headerLen:],
	}, nil
}

// detach copies the payload out of whatever buffer it aliases, making
// the datagram safe to retain.
func (d *datagram) detach() {
	d.Payload = append([]byte(nil), d.Payload...)
}

// --- payload codecs ---

// encodeRegister carries the app name and its event subscriptions. The
// name length rides a uint16 and the subscription count a single byte;
// oversized inputs would silently truncate and corrupt the frame, so
// they are rejected instead.
func encodeRegister(name string, subs []controller.EventKind) ([]byte, error) {
	if len(name) > 0xffff {
		return nil, fmt.Errorf("%w: app name %d bytes exceeds uint16", ErrBadDatagram, len(name))
	}
	if len(subs) > 0xff {
		return nil, fmt.Errorf("%w: %d subscriptions exceed uint8", ErrBadDatagram, len(subs))
	}
	b := make([]byte, 0, 3+len(name)+len(subs))
	b = binary.BigEndian.AppendUint16(b, uint16(len(name)))
	b = append(b, name...)
	b = append(b, byte(len(subs)))
	for _, k := range subs {
		b = append(b, byte(k))
	}
	return b, nil
}

func decodeRegister(b []byte) (name string, subs []controller.EventKind, err error) {
	if len(b) < 3 {
		return "", nil, ErrBadDatagram
	}
	n := int(binary.BigEndian.Uint16(b[0:2]))
	if len(b) < 2+n+1 {
		return "", nil, ErrBadDatagram
	}
	name = string(b[2 : 2+n])
	cnt := int(b[2+n])
	rest := b[2+n+1:]
	if len(rest) < cnt {
		return "", nil, ErrBadDatagram
	}
	subs = make([]controller.EventKind, cnt)
	for i := 0; i < cnt; i++ {
		subs[i] = controller.EventKind(rest[i])
	}
	return name, subs, nil
}

// encodeEvent serializes a controller event: kind, dpid, seq, trace
// context (v3), and the embedded OpenFlow message (if any) in its
// native wire format. The trace ids ride every event frame so the stub
// process opens its handler span under the proxy's relay span; untraced
// events carry zeros.
func encodeEvent(ev controller.Event) ([]byte, error) {
	b := make([]byte, 0, 48)
	b = binary.BigEndian.AppendUint32(b, uint32(ev.Kind))
	b = binary.BigEndian.AppendUint64(b, ev.DPID)
	b = binary.BigEndian.AppendUint64(b, ev.Seq)
	b = binary.BigEndian.AppendUint64(b, ev.Trace.TraceID)
	b = binary.BigEndian.AppendUint64(b, ev.Trace.SpanID)
	if ev.Message == nil {
		return append(b, 0), nil
	}
	b = append(b, 1)
	return openflow.AppendMessage(b, ev.Message)
}

func decodeEvent(b []byte) (controller.Event, error) {
	var ev controller.Event
	if len(b) < 37 {
		return ev, ErrBadDatagram
	}
	ev.Kind = controller.EventKind(binary.BigEndian.Uint32(b[0:4]))
	ev.DPID = binary.BigEndian.Uint64(b[4:12])
	ev.Seq = binary.BigEndian.Uint64(b[12:20])
	ev.Trace.TraceID = binary.BigEndian.Uint64(b[20:28])
	ev.Trace.SpanID = binary.BigEndian.Uint64(b[28:36])
	if b[36] == 1 {
		msg, err := openflow.Decode(b[37:])
		if err != nil {
			return ev, err
		}
		ev.Message = msg
	}
	return ev, nil
}

// encodeStatus carries an optional error string (dgEventDone,
// dgRestoreDone, dgResponse error halves). Error text longer than a
// uint16 can carry would silently truncate the length field and shear
// the frame, so it is rejected; send paths that must always produce a
// frame use statusPayload instead.
func encodeStatus(err error) ([]byte, error) {
	if err == nil {
		return []byte{0}, nil
	}
	s := err.Error()
	if len(s) > 0xffff {
		return nil, fmt.Errorf("%w: status text %d bytes exceeds uint16", ErrBadDatagram, len(s))
	}
	b := make([]byte, 0, 3+len(s))
	b = append(b, 1)
	b = binary.BigEndian.AppendUint16(b, uint16(len(s)))
	return append(b, s...), nil
}

// statusPayload is the infallible form of encodeStatus for send paths:
// a pathological error message is clipped (with a marker) rather than
// dropped, so the peer still gets a well-formed status frame.
func statusPayload(err error) []byte {
	b, encErr := encodeStatus(err)
	if encErr == nil {
		return b
	}
	const marker = "... [truncated]"
	s := err.Error()[:0xffff-len(marker)] + marker
	b, _ = encodeStatus(errors.New(s))
	return b
}

func decodeStatus(b []byte) (error, []byte, bool) {
	if len(b) < 1 {
		return nil, nil, false
	}
	if b[0] == 0 {
		return nil, b[1:], true
	}
	if len(b) < 3 {
		return nil, nil, false
	}
	n := int(binary.BigEndian.Uint16(b[1:3]))
	if len(b) < 3+n {
		return nil, nil, false
	}
	return errors.New(string(b[3 : 3+n])), b[3+n:], true
}

// encodeEventBatch packs N events into one dgEventBatch payload:
// uint16 count, then each event as a uint32 length prefix followed by
// its encodeEvent form. One datagram (fragmented if huge) replaces N
// UDP round trips.
func encodeEventBatch(evs []controller.Event) ([]byte, error) {
	if len(evs) > 0xffff {
		return nil, fmt.Errorf("%w: batch of %d events exceeds uint16", ErrBadDatagram, len(evs))
	}
	b := make([]byte, 0, 2+len(evs)*40)
	b = binary.BigEndian.AppendUint16(b, uint16(len(evs)))
	for _, ev := range evs {
		p, err := encodeEvent(ev)
		if err != nil {
			return nil, err
		}
		b = binary.BigEndian.AppendUint32(b, uint32(len(p)))
		b = append(b, p...)
	}
	return b, nil
}

func decodeEventBatch(b []byte) ([]controller.Event, error) {
	if len(b) < 2 {
		return nil, ErrBadDatagram
	}
	n := int(binary.BigEndian.Uint16(b[0:2]))
	b = b[2:]
	evs := make([]controller.Event, 0, n)
	for i := 0; i < n; i++ {
		if len(b) < 4 {
			return nil, ErrBadDatagram
		}
		sz := int(binary.BigEndian.Uint32(b[0:4]))
		if sz < 0 || len(b) < 4+sz {
			return nil, ErrBadDatagram
		}
		ev, err := decodeEvent(b[4 : 4+sz])
		if err != nil {
			return nil, err
		}
		evs = append(evs, ev)
		b = b[4+sz:]
	}
	return evs, nil
}

// encodeCrash carries the wrapper's crash report: the panic value and
// stack trace, which the proxy folds into a problem ticket.
func encodeCrash(reason, stack string) []byte {
	b := make([]byte, 0, 8+len(reason)+len(stack))
	b = binary.BigEndian.AppendUint32(b, uint32(len(reason)))
	b = append(b, reason...)
	b = binary.BigEndian.AppendUint32(b, uint32(len(stack)))
	return append(b, stack...)
}

func decodeCrash(b []byte) (reason, stack string, err error) {
	if len(b) < 4 {
		return "", "", ErrBadDatagram
	}
	n := int(binary.BigEndian.Uint32(b[0:4]))
	if len(b) < 4+n+4 {
		return "", "", ErrBadDatagram
	}
	reason = string(b[4 : 4+n])
	rest := b[4+n:]
	m := int(binary.BigEndian.Uint32(rest[0:4]))
	if len(rest) < 4+m {
		return "", "", ErrBadDatagram
	}
	return reason, string(rest[4 : 4+m]), nil
}

// appendCrashIndex extends a crash payload with the batch position of
// the event that killed the app. decodeCrash ignores trailing bytes, so
// the suffix is backward compatible with v1-style consumers.
func appendCrashIndex(payload []byte, idx int) []byte {
	return binary.BigEndian.AppendUint32(payload, uint32(idx))
}

// decodeCrashIndex recovers the batch index from an indexed crash
// payload; ok is false for plain (single-event) crash reports.
func decodeCrashIndex(b []byte) (idx int, ok bool) {
	if len(b) < 4 {
		return 0, false
	}
	n := int(binary.BigEndian.Uint32(b[0:4]))
	if len(b) < 4+n+4 {
		return 0, false
	}
	rest := b[4+n:]
	m := int(binary.BigEndian.Uint32(rest[0:4]))
	if len(rest) < 4+m+4 {
		return 0, false
	}
	return int(binary.BigEndian.Uint32(rest[4+m : 4+m+4])), true
}

// encodeRequest frames a Context call: opcode, dpid, optional message.
func encodeRequest(op uint8, dpid uint64, msg openflow.Message) ([]byte, error) {
	b := make([]byte, 0, 16)
	b = append(b, op)
	b = binary.BigEndian.AppendUint64(b, dpid)
	if msg == nil {
		return b, nil
	}
	return openflow.AppendMessage(b, msg)
}

func decodeRequest(b []byte) (op uint8, dpid uint64, msg openflow.Message, err error) {
	if len(b) < 9 {
		return 0, 0, nil, ErrBadDatagram
	}
	op = b[0]
	dpid = binary.BigEndian.Uint64(b[1:9])
	if len(b) > 9 {
		msg, err = openflow.Decode(b[9:])
		if err != nil {
			return 0, 0, nil, err
		}
	}
	return op, dpid, msg, nil
}

// encodeSwitches packs a dpid list; the uint16 count field bounds it.
func encodeSwitches(dpids []uint64) ([]byte, error) {
	if len(dpids) > 0xffff {
		return nil, fmt.Errorf("%w: %d switches exceed uint16", ErrBadDatagram, len(dpids))
	}
	b := make([]byte, 0, 2+8*len(dpids))
	b = binary.BigEndian.AppendUint16(b, uint16(len(dpids)))
	for _, d := range dpids {
		b = binary.BigEndian.AppendUint64(b, d)
	}
	return b, nil
}

func decodeSwitches(b []byte) ([]uint64, error) {
	if len(b) < 2 {
		return nil, ErrBadDatagram
	}
	n := int(binary.BigEndian.Uint16(b[0:2]))
	if len(b) < 2+8*n {
		return nil, ErrBadDatagram
	}
	out := make([]uint64, n)
	for i := 0; i < n; i++ {
		out[i] = binary.BigEndian.Uint64(b[2+8*i : 2+8*(i+1)])
	}
	return out, nil
}

// encodePorts packs PhyPort descriptors in their OpenFlow wire form.
func encodePorts(ports []openflow.PhyPort) []byte {
	// Reuse the FeaturesReply body layout for the port array.
	fr := &openflow.FeaturesReply{Ports: ports}
	raw, _ := openflow.Encode(fr)
	return raw
}

func decodePorts(b []byte) ([]openflow.PhyPort, error) {
	msg, err := openflow.Decode(b)
	if err != nil {
		return nil, err
	}
	fr, ok := msg.(*openflow.FeaturesReply)
	if !ok {
		return nil, ErrBadDatagram
	}
	return fr.Ports, nil
}

// encodeTopology packs discovered links; the uint16 count bounds it.
func encodeTopology(links []controller.LinkInfo) ([]byte, error) {
	if len(links) > 0xffff {
		return nil, fmt.Errorf("%w: %d links exceed uint16", ErrBadDatagram, len(links))
	}
	b := make([]byte, 0, 2+20*len(links))
	b = binary.BigEndian.AppendUint16(b, uint16(len(links)))
	for _, l := range links {
		b = binary.BigEndian.AppendUint64(b, l.SrcDPID)
		b = binary.BigEndian.AppendUint16(b, l.SrcPort)
		b = binary.BigEndian.AppendUint64(b, l.DstDPID)
		b = binary.BigEndian.AppendUint16(b, l.DstPort)
	}
	return b, nil
}

func decodeTopology(b []byte) ([]controller.LinkInfo, error) {
	if len(b) < 2 {
		return nil, ErrBadDatagram
	}
	n := int(binary.BigEndian.Uint16(b[0:2]))
	if len(b) < 2+20*n {
		return nil, ErrBadDatagram
	}
	out := make([]controller.LinkInfo, n)
	for i := 0; i < n; i++ {
		off := 2 + 20*i
		out[i] = controller.LinkInfo{
			SrcDPID: binary.BigEndian.Uint64(b[off : off+8]),
			SrcPort: binary.BigEndian.Uint16(b[off+8 : off+10]),
			DstDPID: binary.BigEndian.Uint64(b[off+10 : off+18]),
			DstPort: binary.BigEndian.Uint16(b[off+18 : off+20]),
		}
	}
	return out, nil
}
