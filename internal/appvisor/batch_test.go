package appvisor

import (
	"errors"
	"strings"
	"testing"

	"legosdn/internal/controller"
	"legosdn/internal/openflow"
)

func TestEventBatchRoundTrip(t *testing.T) {
	evs := []controller.Event{
		pktInEvent(1, 1),
		{Seq: 2, Kind: controller.EventSwitchDown, DPID: 7}, // nil message
		pktInEvent(3, 9),
	}
	b, err := encodeEventBatch(evs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeEventBatch(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(evs) {
		t.Fatalf("decoded %d events, want %d", len(got), len(evs))
	}
	for i, ev := range got {
		if ev.Seq != evs[i].Seq || ev.Kind != evs[i].Kind || ev.DPID != evs[i].DPID {
			t.Fatalf("event %d header mismatch: %+v", i, ev)
		}
	}
	if got[1].Message != nil {
		t.Fatal("nil message did not survive the batch")
	}
	if _, ok := got[0].Message.(*openflow.PacketIn); !ok {
		t.Fatalf("message %T", got[0].Message)
	}
}

func TestEventBatchDecodeRejectsTruncation(t *testing.T) {
	b, err := encodeEventBatch([]controller.Event{pktInEvent(1, 1), pktInEvent(2, 2)})
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{1, 3, 10, len(b) - 1} {
		if _, err := decodeEventBatch(b[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestCrashIndexRoundTrip(t *testing.T) {
	plain := encodeCrash("boom", "stack trace here")
	if _, ok := decodeCrashIndex(plain); ok {
		t.Fatal("plain crash payload must not carry an index")
	}
	indexed := appendCrashIndex(plain, 5)
	// The index must be invisible to the v1-style decoder...
	reason, stack, err := decodeCrash(indexed)
	if err != nil || reason != "boom" || stack != "stack trace here" {
		t.Fatalf("indexed crash broke decodeCrash: %q %q %v", reason, stack, err)
	}
	// ...and recoverable by the indexed one.
	idx, ok := decodeCrashIndex(indexed)
	if !ok || idx != 5 {
		t.Fatalf("index: got %d %v", idx, ok)
	}
}

// TestCodecBounds is the table-driven regression for the silent uint16
// truncation bugs: oversized inputs must be rejected, not sheared.
func TestCodecBounds(t *testing.T) {
	longName := strings.Repeat("n", 0x10000)
	manySubs := make([]controller.EventKind, 256)
	manyDpids := make([]uint64, 0x10000)
	manyLinks := make([]controller.LinkInfo, 0x10000)
	longErr := errors.New(strings.Repeat("e", 0x10000))
	manyEvents := make([]controller.Event, 0x10000)

	tests := []struct {
		name    string
		encode  func() error
		wantErr bool
	}{
		{"register/name-max", func() error { _, err := encodeRegister(strings.Repeat("n", 0xffff), nil); return err }, false},
		{"register/name-over", func() error { _, err := encodeRegister(longName, nil); return err }, true},
		{"register/subs-max", func() error { _, err := encodeRegister("a", make([]controller.EventKind, 255)); return err }, false},
		{"register/subs-over", func() error { _, err := encodeRegister("a", manySubs); return err }, true},
		{"status/max", func() error { _, err := encodeStatus(errors.New(strings.Repeat("e", 0xffff))); return err }, false},
		{"status/over", func() error { _, err := encodeStatus(longErr); return err }, true},
		{"switches/over", func() error { _, err := encodeSwitches(manyDpids); return err }, true},
		{"topology/over", func() error { _, err := encodeTopology(manyLinks); return err }, true},
		{"batch/over", func() error { _, err := encodeEventBatch(manyEvents); return err }, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.encode()
			if tc.wantErr && !errors.Is(err, ErrBadDatagram) {
				t.Fatalf("want ErrBadDatagram, got %v", err)
			}
			if !tc.wantErr && err != nil {
				t.Fatalf("boundary input rejected: %v", err)
			}
		})
	}
}

// TestStatusPayloadClipsOversizedError: the infallible send-path helper
// must still produce a well-formed frame for pathological error text.
func TestStatusPayloadClipsOversizedError(t *testing.T) {
	b := statusPayload(errors.New(strings.Repeat("x", 0x20000)))
	err, rest, ok := decodeStatus(b)
	if !ok || err == nil || len(rest) != 0 {
		t.Fatalf("clipped status unparseable: %v %d %v", err, len(rest), ok)
	}
	if !strings.HasSuffix(err.Error(), "[truncated]") {
		t.Fatalf("missing truncation marker: ...%s", err.Error()[len(err.Error())-32:])
	}
}

// TestProxyBatchDelivery round-trips a coalesced batch through a real
// proxy/stub pair: one datagram, one ack, every event handled in order.
func TestProxyBatchDelivery(t *testing.T) {
	p, ctx := newTestProxy(t, func() controller.App { return &echoApp{} }, ProxyOptions{})
	evs := []controller.Event{pktInEvent(1, 1), pktInEvent(2, 2), pktInEvent(3, 3)}
	if err := p.HandleEventBatch(nil, evs); err != nil {
		t.Fatal(err)
	}
	// echoApp sends one FlowMod per event (plus its one-time Context
	// probe traffic); at least the three FlowMods must have landed.
	if got := ctx.sentCount(); got < 3 {
		t.Fatalf("only %d messages reached the controller", got)
	}
	if got := p.EventsRelayed.Load(); got != 3 {
		t.Fatalf("EventsRelayed = %d, want 3", got)
	}
}

// TestProxyBatchCrashAttribution: a panic on the middle event of a
// batch must be pinned on that event, not the batch head.
func TestProxyBatchCrashAttribution(t *testing.T) {
	p, _ := newTestProxy(t, func() controller.App { return &echoApp{crashOn: 66} }, ProxyOptions{})
	evs := []controller.Event{pktInEvent(1, 1), pktInEvent(2, 66), pktInEvent(3, 3)}
	err := p.HandleEventBatch(nil, evs)
	var ce *CrashError
	if !errors.As(err, &ce) {
		t.Fatalf("want CrashError, got %v", err)
	}
	if !ce.Report.HasEvent || ce.Report.Event.Seq != 2 {
		t.Fatalf("crash attributed to %+v, want seq 2", ce.Report.Event)
	}
	if ce.Report.Reason != CrashReported {
		t.Fatalf("reason = %v, want reported", ce.Report.Reason)
	}
}
