package appvisor

import "time"

// Backoff is the bounded exponential retry schedule Respawn follows
// when a replacement stub fails to come up (factory error or
// registration timeout). Before this existed, one failed respawn left
// the app permanently down and a hot retry loop could hammer a
// struggling host; bounded growth plus jitter retries persistently
// without synchronizing every recovering app onto the same instant.
type Backoff struct {
	// Base is the delay before the first retry (default 50ms).
	Base time.Duration
	// Max caps the exponential growth (default 5s).
	Max time.Duration
	// Attempts is the total number of spawn tries, first included
	// (default 5).
	Attempts int
	// Seed fixes the jitter sequence when nonzero; tests use it for
	// reproducible schedules. Zero seeds from the clock.
	Seed uint64
	// Sleep replaces time.Sleep between attempts; tests install a fake
	// clock here. Nil selects time.Sleep.
	Sleep func(time.Duration)

	rng uint64
}

func (b *Backoff) fill() {
	if b.Base <= 0 {
		b.Base = 50 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = 5 * time.Second
	}
	if b.Attempts <= 0 {
		b.Attempts = 5
	}
	if b.Sleep == nil {
		b.Sleep = time.Sleep
	}
	b.rng = b.Seed
	if b.rng == 0 {
		b.rng = uint64(time.Now().UnixNano()) | 1
	}
}

// Delay returns the jittered pause before retry number attempt
// (0-based): equal jitter — half the exponential step is fixed, half
// drawn uniformly — so concurrent respawns spread out while every delay
// keeps a meaningful floor.
func (b *Backoff) Delay(attempt int) time.Duration {
	d := b.Max
	if attempt < 30 { // beyond 30 doublings the shift alone overflows
		if step := b.Base << uint(attempt); step > 0 && step < b.Max {
			d = step
		}
	}
	half := d / 2
	return half + time.Duration(b.next()%uint64(half+1))
}

// next is a splitmix64 step: a tiny, allocation-free uniform generator,
// good enough for jitter and deterministic under a fixed Seed.
func (b *Backoff) next() uint64 {
	b.rng += 0x9E3779B97F4A7C15
	z := b.rng
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
