package appvisor

import (
	"fmt"
	"os"
	"os/exec"
	"sync"
)

// SubprocessHandle is the proxy's grip on a stub running as a separate
// OS process — the deployment the paper's prototype uses (stand-alone
// JVMs). Address-space isolation is real: a crashing app cannot corrupt
// controller memory, only its own process.
type SubprocessHandle struct {
	mu   sync.Mutex
	cmd  *exec.Cmd
	dead bool
}

// Kill implements StubHandle by killing the process group.
func (h *SubprocessHandle) Kill() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.dead {
		return
	}
	h.dead = true
	if h.cmd.Process != nil {
		_ = h.cmd.Process.Kill()
	}
}

// Alive implements StubHandle.
func (h *SubprocessHandle) Alive() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return !h.dead
}

// Pid reports the stub process id (0 before start).
func (h *SubprocessHandle) Pid() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.cmd.Process == nil {
		return 0
	}
	return h.cmd.Process.Pid
}

// SubprocessFactory launches cmd/legosdn-stub binaries: one process per
// app instance, pointed at the proxy's UDP address. binary is the path
// to a built legosdn-stub; appName selects the app from the registry.
func SubprocessFactory(binary, appName string) StubFactory {
	return func(proxyAddr string) (StubHandle, error) {
		cmd := exec.Command(binary, "-proxy", proxyAddr, "-app", appName)
		cmd.Stdout = os.Stderr // stub diagnostics ride on our stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return nil, fmt.Errorf("appvisor: starting stub process: %w", err)
		}
		h := &SubprocessHandle{cmd: cmd}
		go func() {
			_ = cmd.Wait() // reap; death is detected via heartbeats/RPC
			h.mu.Lock()
			h.dead = true
			h.mu.Unlock()
		}()
		return h, nil
	}
}
