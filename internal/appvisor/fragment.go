package appvisor

import (
	"encoding/binary"
	"fmt"
	"time"
)

// dgFrag carries one fragment of a datagram too large for a single UDP
// payload — snapshots and restores of apps with real state routinely
// exceed a datagram. Fragment payload layout:
//
//	origType(1) fragIdx(2) fragCount(2) data...
//
// Fragments share the original datagram's ID; the receiver reassembles
// by (ID, origType). Single-frame messages keep the plain wire format,
// so fragmentation is invisible unless needed.
const dgFrag uint8 = 100

// fragDataSize is the data carried per fragment, kept well under the
// UDP payload ceiling.
const fragDataSize = 32 * 1024

// maxReassembly bounds memory a peer can pin with unfinished fragments.
const maxReassembly = 16 << 20

// marshalFrames encodes d into one or more wire frames.
func marshalFrames(d *datagram) ([][]byte, error) {
	if len(d.Payload) <= maxDatagram-headerLen {
		b, err := d.marshal()
		if err != nil {
			return nil, err
		}
		return [][]byte{b}, nil
	}
	count := (len(d.Payload) + fragDataSize - 1) / fragDataSize
	if count > 0xffff {
		return nil, fmt.Errorf("appvisor: payload too large to fragment (%d bytes)", len(d.Payload))
	}
	frames := make([][]byte, 0, count)
	for i := 0; i < count; i++ {
		lo := i * fragDataSize
		hi := lo + fragDataSize
		if hi > len(d.Payload) {
			hi = len(d.Payload)
		}
		fp := make([]byte, 0, 5+hi-lo)
		fp = append(fp, d.Type)
		fp = binary.BigEndian.AppendUint16(fp, uint16(i))
		fp = binary.BigEndian.AppendUint16(fp, uint16(count))
		fp = append(fp, d.Payload[lo:hi]...)
		frame, err := (&datagram{Type: dgFrag, ID: d.ID, Payload: fp}).marshal()
		if err != nil {
			return nil, err
		}
		frames = append(frames, frame)
	}
	return frames, nil
}

// pendingReassembly is one partially received fragmented datagram.
type pendingReassembly struct {
	origType uint8
	parts    [][]byte
	received int
	size     int
	started  time.Time
}

// reassembler rebuilds fragmented datagrams. It is used from a single
// read loop, so it needs no locking.
type reassembler struct {
	pending map[uint64]*pendingReassembly
	total   int
}

func newReassembler() *reassembler {
	return &reassembler{pending: make(map[uint64]*pendingReassembly)}
}

// accept consumes one parsed datagram. For ordinary datagrams it
// returns them unchanged; for fragments it returns the reassembled
// datagram once complete, or nil while parts are outstanding.
func (r *reassembler) accept(d *datagram) (*datagram, error) {
	if d.Type != dgFrag {
		return d, nil
	}
	if len(d.Payload) < 5 {
		return nil, ErrBadDatagram
	}
	origType := d.Payload[0]
	idx := int(binary.BigEndian.Uint16(d.Payload[1:3]))
	count := int(binary.BigEndian.Uint16(d.Payload[3:5]))
	data := d.Payload[5:]
	if count == 0 || idx >= count {
		return nil, ErrBadDatagram
	}
	p := r.pending[d.ID]
	if p == nil {
		p = &pendingReassembly{origType: origType, parts: make([][]byte, count), started: time.Now()}
		r.pending[d.ID] = p
	}
	if p.origType != origType || len(p.parts) != count {
		// Conflicting reassembly state: drop and restart with this part.
		r.total -= p.size
		p = &pendingReassembly{origType: origType, parts: make([][]byte, count), started: time.Now()}
		r.pending[d.ID] = p
	}
	if p.parts[idx] == nil {
		// Copy: the receive loops hand in zero-copy views of the socket
		// buffer, which is reused for the next read while this part
		// waits for its siblings.
		p.parts[idx] = append([]byte(nil), data...)
		p.received++
		p.size += len(data)
		r.total += len(data)
	}
	if r.total > maxReassembly {
		// Shed the oldest pending reassembly to bound memory.
		var oldest uint64
		var oldestAt time.Time
		for id, q := range r.pending {
			if oldestAt.IsZero() || q.started.Before(oldestAt) {
				oldest, oldestAt = id, q.started
			}
		}
		if q := r.pending[oldest]; q != nil {
			r.total -= q.size
			delete(r.pending, oldest)
		}
	}
	if p.received < count {
		return nil, nil
	}
	delete(r.pending, d.ID)
	r.total -= p.size
	payload := make([]byte, 0, p.size)
	for _, part := range p.parts {
		payload = append(payload, part...)
	}
	return &datagram{Type: p.origType, ID: d.ID, Payload: payload}, nil
}
