package appvisor

import (
	"encoding/binary"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"legosdn/internal/controller"
	"legosdn/internal/openflow"
)

// fakeCtx is a minimal controller.Context recording sent messages.
type fakeCtx struct {
	mu       sync.Mutex
	sent     []openflow.Message
	sentDPID []uint64
	barriers int
}

func (f *fakeCtx) SendMessage(dpid uint64, msg openflow.Message) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.sent = append(f.sent, msg)
	f.sentDPID = append(f.sentDPID, dpid)
	return nil
}
func (f *fakeCtx) SendFlowMod(dpid uint64, fm *openflow.FlowMod) error {
	return f.SendMessage(dpid, fm)
}
func (f *fakeCtx) SendPacketOut(dpid uint64, po *openflow.PacketOut) error {
	return f.SendMessage(dpid, po)
}
func (f *fakeCtx) RequestStats(dpid uint64, req *openflow.StatsRequest) (*openflow.StatsReply, error) {
	return &openflow.StatsReply{StatsType: openflow.StatsTypeAggregate,
		Aggregate: &openflow.AggregateStats{FlowCount: 7}}, nil
}
func (f *fakeCtx) Barrier(dpid uint64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.barriers++
	return nil
}
func (f *fakeCtx) Switches() []uint64              { return []uint64{1, 2} }
func (f *fakeCtx) Ports(uint64) []openflow.PhyPort { return []openflow.PhyPort{{PortNo: 9}} }
func (f *fakeCtx) Topology() []controller.LinkInfo {
	return []controller.LinkInfo{{SrcDPID: 1, SrcPort: 1, DstDPID: 2, DstPort: 1}}
}
func (f *fakeCtx) sentCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.sent)
}

// echoApp installs one flow per PacketIn and supports snapshots of its
// event counter. crashOn triggers a panic on a chosen in-port.
type echoApp struct {
	crashOn uint16
	count   uint64
	queried bool
}

func (a *echoApp) Name() string { return "echo" }
func (a *echoApp) Subscriptions() []controller.EventKind {
	return []controller.EventKind{controller.EventPacketIn}
}
func (a *echoApp) HandleEvent(ctx controller.Context, ev controller.Event) error {
	pin, ok := ev.Message.(*openflow.PacketIn)
	if !ok {
		return nil
	}
	if a.crashOn != 0 && pin.InPort == a.crashOn {
		panic("echoApp: poisoned in-port")
	}
	a.count++
	// Exercise the full Context surface once.
	if !a.queried {
		a.queried = true
		if got := ctx.Switches(); len(got) != 2 {
			return errors.New("wrong switch count over RPC")
		}
		if got := ctx.Ports(1); len(got) != 1 || got[0].PortNo != 9 {
			return errors.New("wrong ports over RPC")
		}
		if got := ctx.Topology(); len(got) != 1 {
			return errors.New("wrong topology over RPC")
		}
		if sr, err := ctx.RequestStats(1, &openflow.StatsRequest{StatsType: openflow.StatsTypeAggregate}); err != nil || sr.Aggregate.FlowCount != 7 {
			return errors.New("stats over RPC failed")
		}
		if err := ctx.Barrier(1); err != nil {
			return err
		}
	}
	return ctx.SendFlowMod(ev.DPID, &openflow.FlowMod{
		Match: openflow.MatchAll(), Command: openflow.FlowModAdd, Priority: uint16(a.count),
		BufferID: openflow.BufferIDNone, OutPort: openflow.PortNone,
	})
}
func (a *echoApp) Snapshot() ([]byte, error) {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, a.count)
	return b, nil
}
func (a *echoApp) Restore(state []byte) error {
	if len(state) != 8 {
		return errors.New("bad snapshot")
	}
	a.count = binary.BigEndian.Uint64(state)
	return nil
}

func pktInEvent(seq uint64, inPort uint16) controller.Event {
	return controller.Event{
		Seq: seq, Kind: controller.EventPacketIn, DPID: 1,
		Message: &openflow.PacketIn{BufferID: openflow.BufferIDNone, InPort: inPort},
	}
}

func newTestProxy(t *testing.T, app func() controller.App, opts ProxyOptions) (*Proxy, *fakeCtx) {
	t.Helper()
	ctx := &fakeCtx{}
	p, err := NewProxy("test", ctx, InProcessFactory(app, StubOptions{HeartbeatInterval: 20 * time.Millisecond}), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p, ctx
}

func TestProxyRelaysEventsAndCommands(t *testing.T) {
	p, ctx := newTestProxy(t, func() controller.App { return &echoApp{} }, ProxyOptions{})
	if p.Name() != "echo" {
		t.Fatalf("name = %q (registration should rename)", p.Name())
	}
	subs := p.Subscriptions()
	if len(subs) != 1 || subs[0] != controller.EventPacketIn {
		t.Fatalf("subs = %v", subs)
	}
	for i := uint64(1); i <= 3; i++ {
		if err := p.HandleEvent(nil, pktInEvent(i, 5)); err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
	}
	if ctx.sentCount() != 3 {
		t.Fatalf("flow mods relayed = %d, want 3", ctx.sentCount())
	}
	if p.EventsRelayed.Load() != 3 {
		t.Fatalf("EventsRelayed = %d", p.EventsRelayed.Load())
	}
}

func TestProxyDetectsReportedCrash(t *testing.T) {
	var reports []*CrashReport
	var mu sync.Mutex
	p, _ := newTestProxy(t, func() controller.App { return &echoApp{crashOn: 13} },
		ProxyOptions{OnCrash: func(r *CrashReport) {
			mu.Lock()
			reports = append(reports, r)
			mu.Unlock()
		}})

	if err := p.HandleEvent(nil, pktInEvent(1, 5)); err != nil {
		t.Fatal(err)
	}
	err := p.HandleEvent(nil, pktInEvent(2, 13))
	var ce *CrashError
	if !errors.As(err, &ce) {
		t.Fatalf("want CrashError, got %v", err)
	}
	r := ce.Report
	if r.Reason != CrashReported {
		t.Fatalf("reason = %v", r.Reason)
	}
	if !strings.Contains(r.PanicValue, "poisoned in-port") {
		t.Fatalf("panic value = %q", r.PanicValue)
	}
	if !strings.Contains(r.Stack, "goroutine") {
		t.Fatalf("stack missing: %q", r.Stack)
	}
	if !r.HasEvent || r.Event.Seq != 2 {
		t.Fatalf("offending event not recorded: %+v", r.Event)
	}
	if p.StubUp() {
		t.Fatal("stub should be marked down")
	}
	// Subsequent events fail fast.
	if err := p.HandleEvent(nil, pktInEvent(3, 5)); !errors.Is(err, ErrStubDown) {
		t.Fatalf("want ErrStubDown, got %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(reports) != 1 {
		t.Fatalf("OnCrash fired %d times", len(reports))
	}
	if p.LastCrash() == nil {
		t.Fatal("LastCrash not recorded")
	}
}

func TestProxyRespawnRestoresService(t *testing.T) {
	p, ctx := newTestProxy(t, func() controller.App { return &echoApp{crashOn: 13} }, ProxyOptions{})
	p.HandleEvent(nil, pktInEvent(1, 5))
	p.HandleEvent(nil, pktInEvent(2, 13)) // crash
	if err := p.Respawn(); err != nil {
		t.Fatal(err)
	}
	if !p.StubUp() {
		t.Fatal("stub should be up after respawn")
	}
	if err := p.HandleEvent(nil, pktInEvent(3, 5)); err != nil {
		t.Fatal(err)
	}
	if ctx.sentCount() != 2 {
		t.Fatalf("sent = %d, want 2 (one before crash, one after respawn)", ctx.sentCount())
	}
}

func TestProxySnapshotRestoreRoundTrip(t *testing.T) {
	p, _ := newTestProxy(t, func() controller.App { return &echoApp{} }, ProxyOptions{})
	p.HandleEvent(nil, pktInEvent(1, 5))
	p.HandleEvent(nil, pktInEvent(2, 5))
	snap, err := p.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if binary.BigEndian.Uint64(snap) != 2 {
		t.Fatalf("snapshot count = %d", binary.BigEndian.Uint64(snap))
	}
	p.HandleEvent(nil, pktInEvent(3, 5))
	if err := p.Restore(snap); err != nil {
		t.Fatal(err)
	}
	snap2, err := p.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if binary.BigEndian.Uint64(snap2) != 2 {
		t.Fatalf("restored count = %d, want 2", binary.BigEndian.Uint64(snap2))
	}
}

// plainApp has no Snapshotter support.
type plainApp struct{}

func (plainApp) Name() string                                           { return "plain" }
func (plainApp) Subscriptions() []controller.EventKind                  { return controller.AllEventKinds() }
func (plainApp) HandleEvent(controller.Context, controller.Event) error { return nil }

func TestProxySnapshotUnsupported(t *testing.T) {
	p, _ := newTestProxy(t, func() controller.App { return plainApp{} }, ProxyOptions{})
	if _, err := p.Snapshot(); err == nil || !strings.Contains(err.Error(), "does not snapshot") {
		t.Fatalf("want unsupported error, got %v", err)
	}
}

func TestProxyHeartbeatLossDetection(t *testing.T) {
	var gotReason CrashReason
	var mu sync.Mutex
	done := make(chan struct{})
	p, _ := newTestProxy(t, func() controller.App { return &echoApp{} },
		ProxyOptions{
			HeartbeatTimeout: 150 * time.Millisecond,
			OnCrash: func(r *CrashReport) {
				mu.Lock()
				gotReason = r.Reason
				mu.Unlock()
				close(done)
			},
		})
	// Hard-kill the stub (no crash report): only heartbeats reveal it.
	p.mu.Lock()
	stub := p.stub
	p.mu.Unlock()
	stub.Kill()
	select {
	case <-done:
	case <-time.After(3 * time.Second):
		t.Fatal("heartbeat loss never detected")
	}
	mu.Lock()
	defer mu.Unlock()
	if gotReason != CrashHeartbeat {
		t.Fatalf("reason = %v", gotReason)
	}
	if p.StubUp() {
		t.Fatal("stub should be marked down")
	}
}

func TestProxyEventTimeoutDetection(t *testing.T) {
	block := make(chan struct{})
	slow := &funcApp{name: "slow", handle: func(controller.Context, controller.Event) error {
		<-block
		return nil
	}}
	p, _ := newTestProxy(t, func() controller.App { return slow },
		ProxyOptions{EventTimeout: 100 * time.Millisecond, HeartbeatTimeout: -1})
	defer close(block)
	err := p.HandleEvent(nil, pktInEvent(1, 1))
	var ce *CrashError
	if !errors.As(err, &ce) || ce.Report.Reason != CrashTimeout {
		t.Fatalf("want timeout CrashError, got %v", err)
	}
}

// funcApp adapts a function to controller.App.
type funcApp struct {
	name   string
	handle func(controller.Context, controller.Event) error
}

func (a *funcApp) Name() string                          { return a.name }
func (a *funcApp) Subscriptions() []controller.EventKind { return controller.AllEventKinds() }
func (a *funcApp) HandleEvent(ctx controller.Context, ev controller.Event) error {
	return a.handle(ctx, ev)
}

func TestStubAliveAndKill(t *testing.T) {
	p, _ := newTestProxy(t, func() controller.App { return &echoApp{} },
		ProxyOptions{HeartbeatTimeout: -1})
	p.mu.Lock()
	stub := p.stub.(*Stub)
	p.mu.Unlock()
	if !stub.Alive() {
		t.Fatal("fresh stub should be alive")
	}
	stub.Kill()
	if stub.Alive() {
		t.Fatal("killed stub should be dead")
	}
	stub.Kill() // idempotent
}

func TestProxyHandlerErrorIsNotACrash(t *testing.T) {
	failing := &funcApp{name: "fails", handle: func(controller.Context, controller.Event) error {
		return errors.New("handler declined")
	}}
	p, _ := newTestProxy(t, func() controller.App { return failing }, ProxyOptions{})
	err := p.HandleEvent(nil, pktInEvent(1, 1))
	if err == nil || !strings.Contains(err.Error(), "handler declined") {
		t.Fatalf("got %v", err)
	}
	var ce *CrashError
	if errors.As(err, &ce) {
		t.Fatal("handler error must not be a crash")
	}
	if !p.StubUp() {
		t.Fatal("stub must stay up after a handler error")
	}
}

// Regression test: fill() must normalize any negative HeartbeatTimeout
// to zero (the internal "disabled" value). A raw negative surviving
// normalization would make every "gap > HeartbeatTimeout" comparison
// true, declaring a live stub dead, and would panic the monitor's
// ticker with a non-positive interval.
func TestProxyOptionsFillHeartbeat(t *testing.T) {
	cases := []struct {
		name string
		in   time.Duration
		want time.Duration
	}{
		{"negative disables", -1, 0},
		{"large negative disables", -time.Hour, 0},
		{"zero takes default", 0, 500 * time.Millisecond},
		{"positive kept", 250 * time.Millisecond, 250 * time.Millisecond},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := ProxyOptions{HeartbeatTimeout: tc.in}
			o.fill()
			if o.HeartbeatTimeout != tc.want {
				t.Fatalf("fill(HeartbeatTimeout=%v) = %v, want %v", tc.in, o.HeartbeatTimeout, tc.want)
			}
		})
	}
}
