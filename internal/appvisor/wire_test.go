package appvisor

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"legosdn/internal/controller"
	"legosdn/internal/openflow"
)

func TestDatagramRoundTrip(t *testing.T) {
	d := &datagram{Type: dgEvent, ID: 77, Payload: []byte("hello")}
	b, err := d.marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := parseDatagram(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, d) {
		t.Fatalf("got %+v want %+v", got, d)
	}
}

func TestDatagramErrors(t *testing.T) {
	if _, err := parseDatagram([]byte{1, 2}); !errors.Is(err, ErrBadDatagram) {
		t.Error("short datagram should fail")
	}
	b, _ := (&datagram{Type: dgEvent}).marshal()
	b[0] = 0xff // wrong magic
	if _, err := parseDatagram(b); !errors.Is(err, ErrBadDatagram) {
		t.Error("bad magic should fail")
	}
	big := &datagram{Type: dgEvent, Payload: make([]byte, maxDatagram)}
	if _, err := big.marshal(); err == nil {
		t.Error("oversized payload should fail")
	}
}

func TestRegisterRoundTrip(t *testing.T) {
	subs := []controller.EventKind{controller.EventPacketIn, controller.EventSwitchDown}
	enc, err := encodeRegister("learning-switch", subs)
	if err != nil {
		t.Fatal(err)
	}
	name, got, err := decodeRegister(enc)
	if err != nil {
		t.Fatal(err)
	}
	if name != "learning-switch" || !reflect.DeepEqual(got, subs) {
		t.Fatalf("got %q %v", name, got)
	}
}

func TestEventRoundTrip(t *testing.T) {
	pin := &openflow.PacketIn{
		BaseMsg:  openflow.BaseMsg{Xid: 3},
		BufferID: openflow.BufferIDNone,
		InPort:   7,
		Data:     []byte{1, 2, 3},
	}
	ev := controller.Event{Seq: 42, Kind: controller.EventPacketIn, DPID: 9, Message: pin}
	b, err := encodeEvent(ev)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeEvent(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 42 || got.Kind != controller.EventPacketIn || got.DPID != 9 {
		t.Fatalf("header mismatch: %+v", got)
	}
	if !reflect.DeepEqual(got.Message, pin) {
		t.Fatalf("message mismatch: %#v", got.Message)
	}
}

func TestEventRoundTripNilMessage(t *testing.T) {
	ev := controller.Event{Seq: 1, Kind: controller.EventSwitchDown, DPID: 4}
	b, err := encodeEvent(ev)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeEvent(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Message != nil || got.DPID != 4 {
		t.Fatalf("got %+v", got)
	}
}

func TestStatusRoundTrip(t *testing.T) {
	if err, rest, ok := decodeStatus(statusPayload(nil)); err != nil || len(rest) != 0 || !ok {
		t.Fatal("nil status mangled")
	}
	src := errors.New("boom: something broke")
	err, _, ok := decodeStatus(statusPayload(src))
	if !ok || err == nil || err.Error() != src.Error() {
		t.Fatalf("got %v", err)
	}
	payload := append(statusPayload(nil), 0xca, 0xfe)
	_, rest, ok := decodeStatus(payload)
	if !ok || len(rest) != 2 {
		t.Fatal("trailing payload lost")
	}
}

func TestCrashRoundTrip(t *testing.T) {
	reason, stack, err := decodeCrash(encodeCrash("nil deref", "goroutine 1 [running]:\nmain.main()"))
	if err != nil {
		t.Fatal(err)
	}
	if reason != "nil deref" || stack == "" {
		t.Fatalf("got %q %q", reason, stack)
	}
	if _, _, err := decodeCrash([]byte{0, 0}); err == nil {
		t.Error("short crash payload should fail")
	}
}

func TestRequestRoundTrip(t *testing.T) {
	fm := &openflow.FlowMod{BaseMsg: openflow.BaseMsg{Xid: 1}, Match: openflow.MatchAll(),
		Command: openflow.FlowModAdd, BufferID: openflow.BufferIDNone, OutPort: openflow.PortNone}
	b, err := encodeRequest(opSendMessage, 12, fm)
	if err != nil {
		t.Fatal(err)
	}
	op, dpid, msg, err := decodeRequest(b)
	if err != nil {
		t.Fatal(err)
	}
	if op != opSendMessage || dpid != 12 {
		t.Fatalf("op=%d dpid=%d", op, dpid)
	}
	if _, ok := msg.(*openflow.FlowMod); !ok {
		t.Fatalf("msg %T", msg)
	}
	// nil message form.
	b2, _ := encodeRequest(opBarrier, 3, nil)
	op2, dpid2, msg2, err := decodeRequest(b2)
	if err != nil || op2 != opBarrier || dpid2 != 3 || msg2 != nil {
		t.Fatalf("barrier decode: %v %d %d %v", err, op2, dpid2, msg2)
	}
}

func TestSwitchesTopologyPortsRoundTrip(t *testing.T) {
	dpids := []uint64{1, 5, 900}
	encSw, err := encodeSwitches(dpids)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeSwitches(encSw)
	if err != nil || !reflect.DeepEqual(got, dpids) {
		t.Fatalf("switches: %v %v", got, err)
	}

	links := []controller.LinkInfo{{SrcDPID: 1, SrcPort: 2, DstDPID: 3, DstPort: 4}}
	encTopo, err := encodeTopology(links)
	if err != nil {
		t.Fatal(err)
	}
	gotLinks, err := decodeTopology(encTopo)
	if err != nil || !reflect.DeepEqual(gotLinks, links) {
		t.Fatalf("topology: %v %v", gotLinks, err)
	}

	ports := []openflow.PhyPort{{PortNo: 1, Name: "eth1", Curr: 1}}
	gotPorts, err := decodePorts(encodePorts(ports))
	if err != nil || !reflect.DeepEqual(gotPorts, ports) {
		t.Fatalf("ports: %v %v", gotPorts, err)
	}
}

// Property: event encode/decode round-trips for arbitrary headers.
func TestQuickEventRoundTrip(t *testing.T) {
	f := func(seq, dpid uint64, kindRaw uint8, seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ev := controller.Event{
			Seq:  seq,
			Kind: controller.EventKind(kindRaw % 6),
			DPID: dpid,
		}
		if r.Intn(2) == 0 {
			ev.Message = &openflow.PacketIn{
				BufferID: openflow.BufferIDNone,
				InPort:   uint16(r.Uint32()),
				Data:     make([]byte, r.Intn(64)),
			}
		}
		b, err := encodeEvent(ev)
		if err != nil {
			return false
		}
		got, err := decodeEvent(b)
		if err != nil {
			return false
		}
		return got.Seq == ev.Seq && got.Kind == ev.Kind && got.DPID == ev.DPID &&
			(got.Message == nil) == (ev.Message == nil)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: datagram marshal/parse round-trips.
func TestQuickDatagramRoundTrip(t *testing.T) {
	f := func(typ uint8, id uint64, payload []byte) bool {
		if len(payload) > maxDatagram-headerLen {
			payload = payload[:maxDatagram-headerLen]
		}
		d := &datagram{Type: typ, ID: id, Payload: payload}
		b, err := d.marshal()
		if err != nil {
			return false
		}
		got, err := parseDatagram(b)
		if err != nil {
			return false
		}
		if len(got.Payload) == 0 && len(d.Payload) == 0 {
			return got.Type == d.Type && got.ID == d.ID
		}
		return reflect.DeepEqual(got, d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
