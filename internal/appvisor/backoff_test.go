package appvisor

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"legosdn/internal/controller"
)

func TestBackoffDelayEnvelope(t *testing.T) {
	b := Backoff{Base: 50 * time.Millisecond, Max: 5 * time.Second, Seed: 7}
	b.fill()
	for attempt := 0; attempt < 12; attempt++ {
		step := b.Base << uint(attempt)
		if step <= 0 || step > b.Max {
			step = b.Max
		}
		d := b.Delay(attempt)
		if d < step/2 || d > step {
			t.Fatalf("attempt %d: delay %v outside [%v, %v]", attempt, d, step/2, step)
		}
	}
}

func TestBackoffDeterministicUnderSeed(t *testing.T) {
	mk := func() []time.Duration {
		b := Backoff{Seed: 42}
		b.fill()
		out := make([]time.Duration, 8)
		for i := range out {
			out[i] = b.Delay(i)
		}
		return out
	}
	a, c := mk(), mk()
	for i := range a {
		if a[i] != c[i] {
			t.Fatalf("delay %d differs across same-seed runs: %v vs %v", i, a[i], c[i])
		}
	}
}

func TestBackoffJitterVariesAcrossSeeds(t *testing.T) {
	b1 := Backoff{Seed: 1}
	b2 := Backoff{Seed: 2}
	b1.fill()
	b2.fill()
	same := true
	for i := 0; i < 8; i++ {
		if b1.Delay(i) != b2.Delay(i) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical jitter sequences")
	}
}

// flakyFactory fails its first n spawn attempts, then delegates to a
// real in-process stub.
type flakyFactory struct {
	failures atomic.Int64
	inner    StubFactory
}

func (f *flakyFactory) spawn(proxyAddr string) (StubHandle, error) {
	if f.failures.Add(-1) >= 0 {
		return nil, errors.New("injected spawn failure")
	}
	return f.inner(proxyAddr)
}

func TestRespawnRetriesWithFakeClock(t *testing.T) {
	p, _ := newTestProxy(t, func() controller.App { return &echoApp{crashOn: 13} }, ProxyOptions{})

	var slept []time.Duration
	p.opts.RespawnBackoff = Backoff{
		Base:     time.Second, // a real sleep this long would time the test out
		Max:      30 * time.Second,
		Attempts: 5,
		Seed:     99,
		Sleep:    func(d time.Duration) { slept = append(slept, d) },
	}
	flaky := &flakyFactory{inner: p.factory}
	flaky.failures.Store(3)
	p.factory = flaky.spawn

	p.HandleEvent(nil, pktInEvent(1, 13)) // reported crash, stub marked down
	if err := p.Respawn(); err != nil {
		t.Fatalf("respawn should have succeeded on attempt 4: %v", err)
	}
	if !p.StubUp() {
		t.Fatal("stub not up after successful respawn")
	}
	if len(slept) != 3 {
		t.Fatalf("expected 3 backoff sleeps (one per failed attempt), got %d: %v", len(slept), slept)
	}
	// The fake clock saw the jittered exponential schedule: each delay
	// within its attempt's [step/2, step] envelope.
	for i, d := range slept {
		step := time.Second << uint(i)
		if d < step/2 || d > step {
			t.Fatalf("sleep %d: %v outside [%v, %v]", i, d, step/2, step)
		}
	}
}

func TestRespawnGivesUpAfterAttempts(t *testing.T) {
	p, _ := newTestProxy(t, func() controller.App { return &echoApp{crashOn: 13} }, ProxyOptions{})

	var sleeps int
	p.opts.RespawnBackoff = Backoff{
		Base:     time.Second,
		Attempts: 3,
		Seed:     1,
		Sleep:    func(time.Duration) { sleeps++ },
	}
	flaky := &flakyFactory{inner: p.factory}
	flaky.failures.Store(1 << 30) // never recovers
	p.factory = flaky.spawn

	p.HandleEvent(nil, pktInEvent(1, 13)) // reported crash, stub marked down
	err := p.Respawn()
	if err == nil {
		t.Fatal("respawn against a dead factory should fail")
	}
	if sleeps != 2 {
		t.Fatalf("3 attempts should sleep twice between them, slept %d times", sleeps)
	}
	if p.respawnRetries.Load() != 0 {
		// No registry installed: the nil counter must stay inert.
		t.Fatal("nil respawn-retries counter accumulated")
	}
}
