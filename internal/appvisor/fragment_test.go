package appvisor

import (
	"bytes"
	"math/rand"
	"net"
	"testing"
	"testing/quick"
	"time"

	"legosdn/internal/controller"
)

func TestMarshalFramesSmallUnchanged(t *testing.T) {
	d := &datagram{Type: dgEvent, ID: 7, Payload: []byte("small")}
	frames, err := marshalFrames(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 1 {
		t.Fatalf("frames = %d", len(frames))
	}
	got, err := parseDatagram(frames[0])
	if err != nil || got.Type != dgEvent || string(got.Payload) != "small" {
		t.Fatalf("got %+v err %v", got, err)
	}
}

func TestFragmentationRoundTrip(t *testing.T) {
	payload := make([]byte, 3*fragDataSize+100)
	rand.New(rand.NewSource(1)).Read(payload)
	d := &datagram{Type: dgSnapshotReply, ID: 42, Payload: payload}
	frames, err := marshalFrames(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 4 {
		t.Fatalf("frames = %d, want 4", len(frames))
	}
	r := newReassembler()
	var out *datagram
	for i, f := range frames {
		parsed, err := parseDatagram(f)
		if err != nil {
			t.Fatal(err)
		}
		out, err = r.accept(parsed)
		if err != nil {
			t.Fatal(err)
		}
		if i < len(frames)-1 && out != nil {
			t.Fatal("reassembly completed early")
		}
	}
	if out == nil {
		t.Fatal("reassembly never completed")
	}
	if out.Type != dgSnapshotReply || out.ID != 42 || !bytes.Equal(out.Payload, payload) {
		t.Fatalf("reassembled mismatch: type=%d id=%d len=%d", out.Type, out.ID, len(out.Payload))
	}
	if len(r.pending) != 0 || r.total != 0 {
		t.Fatal("reassembler retained state")
	}
}

func TestFragmentationOutOfOrderAndDuplicates(t *testing.T) {
	payload := make([]byte, 2*fragDataSize+9)
	rand.New(rand.NewSource(2)).Read(payload)
	frames, _ := marshalFrames(&datagram{Type: dgRestoreReq, ID: 5, Payload: payload})
	r := newReassembler()
	order := []int{2, 0, 0, 1, 2} // shuffled with duplicates
	var out *datagram
	for _, idx := range order {
		parsed, _ := parseDatagram(frames[idx])
		got, err := r.accept(parsed)
		if err != nil {
			t.Fatal(err)
		}
		if got != nil {
			out = got
		}
	}
	if out == nil || !bytes.Equal(out.Payload, payload) {
		t.Fatal("out-of-order reassembly failed")
	}
}

func TestFragmentMalformed(t *testing.T) {
	r := newReassembler()
	if _, err := r.accept(&datagram{Type: dgFrag, Payload: []byte{1, 2}}); err == nil {
		t.Error("short fragment should fail")
	}
	// count == 0
	if _, err := r.accept(&datagram{Type: dgFrag, Payload: []byte{dgEvent, 0, 0, 0, 0}}); err == nil {
		t.Error("zero count should fail")
	}
	// idx >= count
	if _, err := r.accept(&datagram{Type: dgFrag, Payload: []byte{dgEvent, 0, 5, 0, 2}}); err == nil {
		t.Error("idx out of range should fail")
	}
}

// Property: any payload survives marshalFrames + reassembly.
func TestQuickFragmentationIdentity(t *testing.T) {
	f := func(seed int64, sizeRaw uint32) bool {
		size := int(sizeRaw % (4 * fragDataSize))
		payload := make([]byte, size)
		rand.New(rand.NewSource(seed)).Read(payload)
		d := &datagram{Type: dgSnapshotReply, ID: uint64(seed), Payload: payload}
		frames, err := marshalFrames(d)
		if err != nil {
			return false
		}
		r := newReassembler()
		var out *datagram
		for _, fr := range frames {
			parsed, err := parseDatagram(fr)
			if err != nil {
				return false
			}
			got, err := r.accept(parsed)
			if err != nil {
				return false
			}
			if got != nil {
				out = got
			}
		}
		return out != nil && bytes.Equal(out.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// bigStateApp carries state far larger than one UDP datagram.
type bigStateApp struct {
	state []byte
}

func (a *bigStateApp) Name() string                                           { return "big" }
func (a *bigStateApp) Subscriptions() []controller.EventKind                  { return controller.AllEventKinds() }
func (a *bigStateApp) HandleEvent(controller.Context, controller.Event) error { return nil }
func (a *bigStateApp) Snapshot() ([]byte, error) {
	return append([]byte(nil), a.state...), nil
}
func (a *bigStateApp) Restore(b []byte) error {
	a.state = append([]byte(nil), b...)
	return nil
}

func TestLargeSnapshotOverRPC(t *testing.T) {
	// 300 KB of state: ~10 fragments each way.
	state := make([]byte, 300*1024)
	rand.New(rand.NewSource(3)).Read(state)
	app := &bigStateApp{state: state}
	p, err := NewProxy("big", &fakeCtx{},
		InProcessFactory(func() controller.App { return app }, StubOptions{}),
		ProxyOptions{EventTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	snap, err := p.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snap, state) {
		t.Fatalf("snapshot len=%d corrupted over fragmentation", len(snap))
	}
	// Restore an equally large different state.
	state2 := make([]byte, 280*1024)
	rand.New(rand.NewSource(4)).Read(state2)
	if err := p.Restore(state2); err != nil {
		t.Fatal(err)
	}
	snap2, err := p.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snap2, state2) {
		t.Fatal("restore corrupted over fragmentation")
	}
}

func TestProxySurvivesGarbageDatagrams(t *testing.T) {
	p, _ := newTestProxy(t, func() controller.App { return &echoApp{} }, ProxyOptions{})
	// Blast garbage at the proxy's socket from a stranger.
	conn, err := dialUDP(p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 500; i++ {
		b := make([]byte, r.Intn(200))
		r.Read(b)
		conn.Write(b)
	}
	// Valid-magic, malformed-payload datagrams too.
	for _, payload := range [][]byte{
		{},              // short fragment
		{1, 2},          // short register
		{0, 0, 0, 0, 0}, // zero-count fragment body
	} {
		d := &datagram{Type: dgFrag, ID: 1, Payload: payload}
		if b, err := d.marshal(); err == nil {
			conn.Write(b)
		}
	}
	// The proxy must still serve real traffic.
	if err := p.HandleEvent(nil, pktInEvent(1, 5)); err != nil {
		t.Fatalf("proxy wedged by garbage: %v", err)
	}
}

func dialUDP(addr string) (*net.UDPConn, error) {
	raddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	return net.DialUDP("udp", nil, raddr)
}

func TestForeignRegistrationCannotHijackLiveStub(t *testing.T) {
	p, ctx := newTestProxy(t, func() controller.App { return &echoApp{} }, ProxyOptions{})
	// A stranger claims to be the app.
	conn, err := dialUDP(p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	evil, _ := encodeRegister("evil-app", nil)
	d := &datagram{Type: dgRegister, Payload: evil}
	b, _ := d.marshal()
	conn.Write(b)
	time.Sleep(20 * time.Millisecond)

	if p.Name() != "echo" {
		t.Fatalf("registration hijacked: name = %q", p.Name())
	}
	// Events still flow to the real stub.
	if err := p.HandleEvent(nil, pktInEvent(1, 5)); err != nil {
		t.Fatal(err)
	}
	if ctx.sentCount() != 1 {
		t.Fatal("real stub lost the event stream")
	}
}
