// Package flightrec is LegoSDN's always-on flight recorder: bounded,
// lock-free ring buffers of compact structured records written
// unconditionally by every layer of the control loop. Where
// internal/trace samples a fraction of events into spans, the flight
// recorder keeps the last few thousand facts per layer for *every*
// event — cheap enough to leave on in production — so that when an app
// crashes, a recovery runs, or a chaos invariant breaks, the stack can
// assemble an autopsy from evidence that already exists instead of
// hoping the failure replays under higher sampling.
//
// Design constraints, in order:
//
//   - Always on, near-zero cost. One record is one atomic claim, one
//     small allocation and one atomic pointer swap — the same
//     publication scheme as trace's span rings, which the race
//     detector certifies. No locks on the write path, ever.
//   - Bounded. Each layer owns a fixed power-of-two ring; the oldest
//     record is overwritten when full. Memory is capacity * pointer
//     per layer plus the live records themselves.
//   - Correlatable. Records carry the app name, trace id, transaction
//     id and event seq, so an autopsy can pull "the last N records per
//     layer that touch this failure" without any global index.
package flightrec

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"legosdn/internal/metrics"
)

// Layer identifies which subsystem wrote a record.
type Layer uint8

// Layers, one ring each.
const (
	LayerController Layer = iota
	LayerAppVisor
	LayerNetLog
	LayerCrashPad
	LayerCheckpoint
	NumLayers
)

func (l Layer) String() string {
	switch l {
	case LayerController:
		return "controller"
	case LayerAppVisor:
		return "appvisor"
	case LayerNetLog:
		return "netlog"
	case LayerCrashPad:
		return "crashpad"
	case LayerCheckpoint:
		return "checkpoint"
	default:
		return fmt.Sprintf("layer(%d)", int(l))
	}
}

// Kind is what happened.
type Kind uint8

// Record kinds.
const (
	KindEventDispatched Kind = iota
	KindQuarantine
	KindTxnBegin
	KindTxnCommit
	KindTxnAbort
	KindCheckpointPut
	KindCheckpointRestore
	KindPolicyDecision
	KindCrashDetected
	KindStubRespawn
	KindStubKill
	KindReplay
	KindRecoveryDone
)

func (k Kind) String() string {
	switch k {
	case KindEventDispatched:
		return "event-dispatched"
	case KindQuarantine:
		return "quarantine"
	case KindTxnBegin:
		return "txn-begin"
	case KindTxnCommit:
		return "txn-commit"
	case KindTxnAbort:
		return "txn-abort"
	case KindCheckpointPut:
		return "checkpoint-put"
	case KindCheckpointRestore:
		return "checkpoint-restore"
	case KindPolicyDecision:
		return "policy-decision"
	case KindCrashDetected:
		return "crash-detected"
	case KindStubRespawn:
		return "stub-respawn"
	case KindStubKill:
		return "stub-kill"
	case KindReplay:
		return "replay"
	case KindRecoveryDone:
		return "recovery-done"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Record is one compact fact. Zero-valued correlation fields mean "not
// applicable"; App empty means the record belongs to no single app.
type Record struct {
	Seq   uint64 `json:"seq"`           // recorder-global order
	TS    int64  `json:"ts_unix_nano"`  // wall-clock nanoseconds
	Layer Layer  `json:"layer"`         // which ring
	Kind  Kind   `json:"kind"`          // what happened
	App   string `json:"app,omitempty"` // owning app, if any
	Trace uint64 `json:"trace,omitempty"`
	Txn   uint64 `json:"txn,omitempty"`
	EvSeq uint64 `json:"ev_seq,omitempty"`
	DPID  uint64 `json:"dpid,omitempty"`
	// N is a kind-specific count (ops committed, txns replayed, ...).
	// Hot-path writers use it instead of formatting a Note: a typed
	// field costs nothing, fmt.Sprintf costs ~100ns and two allocs.
	N    int64  `json:"n,omitempty"`
	Note string `json:"note,omitempty"`
}

// String renders one record the way autopsy text does.
func (r Record) String() string {
	s := fmt.Sprintf("#%d %s %s", r.Seq, r.Layer, r.Kind)
	if r.App != "" {
		s += " app=" + r.App
	}
	if r.EvSeq != 0 {
		s += fmt.Sprintf(" seq=%d", r.EvSeq)
	}
	if r.DPID != 0 {
		s += fmt.Sprintf(" dpid=%d", r.DPID)
	}
	if r.Trace != 0 {
		s += fmt.Sprintf(" trace=%016x", r.Trace)
	}
	if r.Txn != 0 {
		s += fmt.Sprintf(" txn=%d", r.Txn)
	}
	if r.N != 0 {
		s += fmt.Sprintf(" n=%d", r.N)
	}
	if r.Note != "" {
		s += " " + r.Note
	}
	return s
}

// ring is one layer's bounded record buffer: writers claim slot indexes
// with next.Add and publish with an atomic pointer swap (the proven
// race-clean scheme from internal/trace's span rings).
type ring struct {
	next  atomic.Uint64
	slots []atomic.Pointer[Record]
	mask  uint64
}

func (rg *ring) publish(rec *Record) bool {
	idx := (rg.next.Add(1) - 1) & rg.mask
	return rg.slots[idx].Swap(rec) != nil
}

// Options tunes a Recorder.
type Options struct {
	// PerLayer is each layer's ring capacity, rounded up to a power of
	// two (default 2048). Total memory is NumLayers * PerLayer slots.
	PerLayer int
}

// Recorder is the flight recorder. A nil *Recorder is fully usable:
// every method no-ops, so layers wire recording unconditionally and pay
// one branch when it is absent.
type Recorder struct {
	rings [NumLayers]ring
	seq   atomic.Uint64

	// Records counts publishes; Laps counts ring overwrites (the
	// recorder working as designed, but visible so a postmortem knows
	// how far back the evidence reaches).
	Records metrics.Counter
	Laps    metrics.Counter
}

// New creates a Recorder.
func New(opts Options) *Recorder {
	if opts.PerLayer <= 0 {
		opts.PerLayer = 2048
	}
	cap := ceilPow2(opts.PerLayer)
	r := &Recorder{}
	for i := range r.rings {
		r.rings[i].slots = make([]atomic.Pointer[Record], cap)
		r.rings[i].mask = uint64(cap - 1)
	}
	return r
}

// Instrument registers the recorder's counters into reg.
func (r *Recorder) Instrument(reg *metrics.Registry) {
	if r == nil || reg == nil {
		return
	}
	reg.RegisterCounter("legosdn_flightrec_records_total",
		"flight-recorder records written across all layers", &r.Records)
	reg.RegisterCounter("legosdn_flightrec_laps_total",
		"flight-recorder slots overwritten by ring wrap-around", &r.Laps)
}

// Record stamps rec with a global sequence number and wall-clock time
// and publishes it into its layer's ring. Safe from any goroutine;
// no-op on a nil recorder or an out-of-range layer.
func (r *Recorder) Record(rec Record) {
	if r == nil || rec.Layer >= NumLayers {
		return
	}
	rec.Seq = r.seq.Add(1)
	rec.TS = time.Now().UnixNano()
	if r.rings[rec.Layer].publish(&rec) {
		r.Laps.Add(1)
	}
	r.Records.Add(1)
}

// Snapshot copies every record currently held, across all layers,
// ordered by global sequence.
func (r *Recorder) Snapshot() []Record {
	if r == nil {
		return nil
	}
	var out []Record
	for l := range r.rings {
		out = append(out, r.layerRecords(Layer(l))...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// LayerRecords returns the last n records of one layer, oldest first
// (n <= 0 returns all held).
func (r *Recorder) LayerRecords(l Layer, n int) []Record {
	if r == nil || l >= NumLayers {
		return nil
	}
	recs := r.layerRecords(l)
	sort.Slice(recs, func(i, j int) bool { return recs[i].Seq < recs[j].Seq })
	if n > 0 && len(recs) > n {
		recs = recs[len(recs)-n:]
	}
	return recs
}

func (r *Recorder) layerRecords(l Layer) []Record {
	rg := &r.rings[l]
	out := make([]Record, 0, len(rg.slots))
	for i := range rg.slots {
		if rec := rg.slots[i].Load(); rec != nil {
			out = append(out, *rec)
		}
	}
	return out
}

// Correlated pulls the evidence for one failure: for each layer, the
// last perLayer records that plausibly belong to it — matching the app
// name, the trace id or the transaction id, or carrying no app at all
// (layer-global facts like txn lifecycle under an empty trace). The
// result maps layer name to records, oldest first; empty layers are
// omitted. app == "" matches every record.
func (r *Recorder) Correlated(app string, traceID, txnID uint64, perLayer int) map[string][]Record {
	if r == nil {
		return nil
	}
	if perLayer <= 0 {
		perLayer = 16
	}
	out := make(map[string][]Record, NumLayers)
	for l := Layer(0); l < NumLayers; l++ {
		recs := r.LayerRecords(l, 0)
		kept := recs[:0]
		for _, rec := range recs {
			switch {
			case app == "" || rec.App == "" || rec.App == app:
			case traceID != 0 && rec.Trace == traceID:
			case txnID != 0 && rec.Txn == txnID:
			default:
				continue
			}
			kept = append(kept, rec)
		}
		if len(kept) > perLayer {
			kept = kept[len(kept)-perLayer:]
		}
		if len(kept) > 0 {
			out[l.String()] = append([]Record(nil), kept...)
		}
	}
	return out
}

func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}
