package flightrec

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"legosdn/internal/metrics"
)

// Store collects autopsies: a bounded in-memory window for
// /debug/autopsy plus optional JSON persistence for postmortems. A nil
// *Store no-ops, matching the Recorder convention.
type Store struct {
	mu        sync.Mutex
	dir       string
	keep      int
	nextID    int
	autopsies []*Autopsy

	// Persisted counts autopsy files written; PersistErrors counts
	// failed writes (the autopsy stays available in memory either way).
	Persisted     metrics.Counter
	PersistErrors metrics.Counter
}

// NewStore creates a Store. dir == "" disables persistence; keep <= 0
// defaults to 32 in-memory autopsies.
func NewStore(dir string, keep int) *Store {
	if keep <= 0 {
		keep = 32
	}
	return &Store{dir: dir, keep: keep}
}

// Dir reports where autopsies persist ("" when persistence is off).
func (s *Store) Dir() string {
	if s == nil {
		return ""
	}
	return s.dir
}

// Instrument registers the store's counters into reg.
func (s *Store) Instrument(reg *metrics.Registry) {
	if s == nil || reg == nil {
		return
	}
	reg.RegisterCounter("legosdn_autopsies_persisted_total",
		"autopsy reports written to the autopsy directory", &s.Persisted)
	reg.RegisterCounter("legosdn_autopsy_persist_errors_total",
		"autopsy reports that failed to persist", &s.PersistErrors)
}

// Add assigns the autopsy an id, stamps its open time if unset, keeps
// it in the bounded window, and persists it when a directory is
// configured. Returns the assigned id (0 on a nil store).
func (s *Store) Add(a *Autopsy) int {
	if s == nil || a == nil {
		return 0
	}
	if a.Timeline == nil {
		a.Timeline = (*Timeline)(nil).Phases()
	}
	s.mu.Lock()
	s.nextID++
	a.ID = s.nextID
	if a.OpenedUnixNano == 0 {
		a.OpenedUnixNano = time.Now().UnixNano()
	}
	s.autopsies = append(s.autopsies, a)
	if len(s.autopsies) > s.keep {
		s.autopsies = s.autopsies[len(s.autopsies)-s.keep:]
	}
	dir := s.dir
	s.mu.Unlock()

	if dir != "" {
		if err := s.persist(dir, a); err != nil {
			s.PersistErrors.Add(1)
		} else {
			s.Persisted.Add(1)
		}
	}
	return a.ID
}

func (s *Store) persist(dir string, a *Autopsy) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(dir, fmt.Sprintf("autopsy-%06d.json", a.ID))
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// All returns the retained autopsies, oldest first.
func (s *Store) All() []*Autopsy {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Autopsy(nil), s.autopsies...)
}

// Get returns the retained autopsy with the given id, or nil.
func (s *Store) Get(id int) *Autopsy {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, a := range s.autopsies {
		if a.ID == id {
			return a
		}
	}
	return nil
}

// HTTPHandler serves the autopsy window: human text by default,
// ?format=json for machines, ?id=N for one report.
func (s *Store) HTTPHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s == nil {
			http.Error(w, "autopsy store disabled", http.StatusNotFound)
			return
		}
		var payload []*Autopsy
		if idStr := r.URL.Query().Get("id"); idStr != "" {
			id, err := strconv.Atoi(idStr)
			if err != nil {
				http.Error(w, "bad id", http.StatusBadRequest)
				return
			}
			a := s.Get(id)
			if a == nil {
				http.Error(w, "no such autopsy", http.StatusNotFound)
				return
			}
			payload = []*Autopsy{a}
		} else {
			payload = s.All()
		}

		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(payload)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if len(payload) == 0 {
			fmt.Fprintln(w, "no autopsies recorded")
			return
		}
		for _, a := range payload {
			fmt.Fprintln(w, a.Render())
		}
	})
}
