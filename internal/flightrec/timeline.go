package flightrec

import "time"

// Phase is one stage of a recovery. The first six phases mirror the
// paper's Crash-Pad recovery arc: detect the crash, roll the open
// transaction back, isolate the failure (classify + pick a policy),
// restore the last checkpoint into a fresh stub, replay the event
// suffix, and resume normal delivery. Controller failover (the
// replicated control plane) adds two more: election — winning the
// lease after the leader dies — and catch-up — draining the replicated
// WAL backlog before serving. App-crash recoveries report zero for
// those two; failover autopsies use the full set.
type Phase uint8

// Recovery phases, in canonical reporting order.
const (
	PhaseDetect Phase = iota
	PhaseIsolate
	PhaseRestore // checkpoint-restore
	PhaseRollback
	PhaseReplay
	PhaseElection // failover: winning the leader lease
	PhaseCatchUp  // failover: draining the replicated WAL backlog
	PhaseResume
	NumPhases
)

func (p Phase) String() string {
	switch p {
	case PhaseDetect:
		return "detect"
	case PhaseIsolate:
		return "isolate"
	case PhaseRestore:
		return "checkpoint-restore"
	case PhaseRollback:
		return "rollback"
	case PhaseReplay:
		return "replay"
	case PhaseElection:
		return "election"
	case PhaseCatchUp:
		return "catch-up"
	case PhaseResume:
		return "resume"
	default:
		return "unknown"
	}
}

// PhaseNames lists all phases in reporting order; every timeline
// and every autopsy carries exactly these entries, so consumers (CI,
// benchmarks) can assert completeness by name.
func PhaseNames() []string {
	names := make([]string, NumPhases)
	for p := Phase(0); p < NumPhases; p++ {
		names[p] = p.String()
	}
	return names
}

// PhaseDuration is one timeline entry as exported in autopsies.
type PhaseDuration struct {
	Phase   string  `json:"phase"`
	Seconds float64 `json:"seconds"`
}

// Timeline accumulates wall-clock time into recovery phases. It starts
// in PhaseDetect; Enter closes the current phase and opens the next;
// phases may be re-entered (durations accumulate), and phases never
// entered report zero — the timeline always exports every phase. Not
// goroutine-safe: a recovery runs on one goroutine. A nil *Timeline
// no-ops everywhere so call sites need no guards.
type Timeline struct {
	now      func() time.Time
	durs     [NumPhases]time.Duration
	cur      Phase
	curStart time.Time
	done     bool
}

// NewTimeline opens a timeline in PhaseDetect. now defaults to
// time.Now; tests inject a fake clock to pin phase boundaries.
func NewTimeline(now func() time.Time) *Timeline {
	if now == nil {
		now = time.Now
	}
	return &Timeline{now: now, cur: PhaseDetect, curStart: now()}
}

// Enter closes the running phase, charging it the elapsed time, and
// starts p.
func (t *Timeline) Enter(p Phase) {
	if t == nil || t.done || p >= NumPhases {
		return
	}
	now := t.now()
	t.durs[t.cur] += now.Sub(t.curStart)
	t.cur = p
	t.curStart = now
}

// Finish closes the running phase and freezes the timeline; further
// Enter/Finish calls no-op.
func (t *Timeline) Finish() {
	if t == nil || t.done {
		return
	}
	t.durs[t.cur] += t.now().Sub(t.curStart)
	t.done = true
}

// Durations returns per-phase accumulated time, indexed by Phase.
func (t *Timeline) Durations() [NumPhases]time.Duration {
	if t == nil {
		return [NumPhases]time.Duration{}
	}
	return t.durs
}

// Total is the sum across all phases.
func (t *Timeline) Total() time.Duration {
	if t == nil {
		return 0
	}
	var sum time.Duration
	for _, d := range t.durs {
		sum += d
	}
	return sum
}

// Phases exports the timeline for an autopsy: always exactly NumPhases
// entries, canonical order, zero seconds for phases never entered.
func (t *Timeline) Phases() []PhaseDuration {
	out := make([]PhaseDuration, NumPhases)
	for p := Phase(0); p < NumPhases; p++ {
		out[p] = PhaseDuration{Phase: p.String()}
		if t != nil {
			out[p].Seconds = t.durs[p].Seconds()
		}
	}
	return out
}
