package flightrec

import (
	"testing"
	"time"
)

// stepClock advances a fixed step per Now() call, so a timeline that
// calls the clock exactly once per transition charges each closed
// phase exactly one step.
type stepClock struct {
	t    time.Time
	step time.Duration
}

func (c *stepClock) Now() time.Time {
	now := c.t
	c.t = c.t.Add(c.step)
	return now
}

func TestTimelinePhasesInOrder(t *testing.T) {
	clk := &stepClock{t: time.Unix(0, 0), step: time.Millisecond}
	tl := NewTimeline(clk.Now)
	tl.Enter(PhaseRollback)
	tl.Enter(PhaseIsolate)
	tl.Enter(PhaseRestore)
	tl.Enter(PhaseReplay)
	tl.Enter(PhaseElection)
	tl.Enter(PhaseCatchUp)
	tl.Enter(PhaseResume)
	tl.Finish()

	durs := tl.Durations()
	for p := Phase(0); p < NumPhases; p++ {
		if durs[p] != time.Millisecond {
			t.Fatalf("phase %s = %v, want exactly 1ms", p, durs[p])
		}
	}
	if got := tl.Total(); got != time.Duration(NumPhases)*time.Millisecond {
		t.Fatalf("total = %v, want %dms", got, NumPhases)
	}
}

func TestTimelineAccumulatesReenteredPhase(t *testing.T) {
	clk := &stepClock{t: time.Unix(0, 0), step: time.Millisecond}
	tl := NewTimeline(clk.Now)
	tl.Enter(PhaseRestore) // detect: 1ms
	tl.Enter(PhaseReplay)  // restore: 1ms
	tl.Enter(PhaseRestore) // replay: 1ms — deep recovery re-restores
	tl.Enter(PhaseResume)  // restore: +1ms = 2ms
	tl.Finish()            // resume: 1ms

	durs := tl.Durations()
	if durs[PhaseRestore] != 2*time.Millisecond {
		t.Fatalf("re-entered restore = %v, want 2ms", durs[PhaseRestore])
	}
	if durs[PhaseReplay] != time.Millisecond {
		t.Fatalf("replay = %v, want 1ms", durs[PhaseReplay])
	}
	if durs[PhaseRollback] != 0 || durs[PhaseIsolate] != 0 {
		t.Fatalf("unentered phases must stay zero: %v", durs)
	}
	if got := tl.Total(); got != 5*time.Millisecond {
		t.Fatalf("total = %v, want 5ms (detect 1 + restore 2 + replay 1 + resume 1)", got)
	}
}

func TestTimelineFinishFreezes(t *testing.T) {
	clk := &stepClock{t: time.Unix(0, 0), step: time.Millisecond}
	tl := NewTimeline(clk.Now)
	tl.Finish()
	before := tl.Durations()
	tl.Enter(PhaseReplay)
	tl.Finish()
	if tl.Durations() != before {
		t.Fatalf("frozen timeline mutated: %v -> %v", before, tl.Durations())
	}
}

func TestTimelinePhasesExportAlwaysComplete(t *testing.T) {
	want := []string{"detect", "isolate", "checkpoint-restore", "rollback", "replay", "election", "catch-up", "resume"}
	for _, tl := range []*Timeline{nil, NewTimeline((&stepClock{t: time.Unix(0, 0), step: time.Millisecond}).Now)} {
		phases := tl.Phases()
		if len(phases) != int(NumPhases) {
			t.Fatalf("exported %d phases, want %d", len(phases), NumPhases)
		}
		for i, pd := range phases {
			if pd.Phase != want[i] {
				t.Fatalf("phase %d = %q, want %q", i, pd.Phase, want[i])
			}
		}
	}
	if names := PhaseNames(); len(names) != int(NumPhases) || names[2] != "checkpoint-restore" {
		t.Fatalf("PhaseNames = %v", names)
	}
}

func TestNilTimelineNoops(t *testing.T) {
	var tl *Timeline
	tl.Enter(PhaseReplay)
	tl.Finish()
	if tl.Total() != 0 {
		t.Fatalf("nil total = %v", tl.Total())
	}
}
