package flightrec

import (
	"fmt"
	"sync"
	"testing"

	"legosdn/internal/metrics"
)

func TestNilRecorderNoops(t *testing.T) {
	var r *Recorder
	r.Record(Record{Layer: LayerNetLog})
	if got := r.Snapshot(); got != nil {
		t.Fatalf("nil snapshot = %v", got)
	}
	if got := r.LayerRecords(LayerNetLog, 4); got != nil {
		t.Fatalf("nil layer records = %v", got)
	}
	if got := r.Correlated("x", 1, 1, 4); got != nil {
		t.Fatalf("nil correlated = %v", got)
	}
	r.Instrument(metrics.NewRegistry())
}

func TestRecordOrderingAndStamps(t *testing.T) {
	r := New(Options{PerLayer: 8})
	for i := 0; i < 5; i++ {
		r.Record(Record{Layer: LayerController, Kind: KindEventDispatched, EvSeq: uint64(i)})
	}
	recs := r.LayerRecords(LayerController, 0)
	if len(recs) != 5 {
		t.Fatalf("held %d records, want 5", len(recs))
	}
	for i, rec := range recs {
		if rec.Seq != uint64(i+1) {
			t.Fatalf("record %d seq=%d, want %d", i, rec.Seq, i+1)
		}
		if rec.TS == 0 {
			t.Fatalf("record %d missing timestamp", i)
		}
		if rec.EvSeq != uint64(i) {
			t.Fatalf("record %d out of order: ev_seq=%d", i, rec.EvSeq)
		}
	}
	if got := r.Records.Load(); got != 5 {
		t.Fatalf("Records=%d, want 5", got)
	}
	if got := r.Laps.Load(); got != 0 {
		t.Fatalf("Laps=%d, want 0", got)
	}
}

func TestRingWrapKeepsNewest(t *testing.T) {
	r := New(Options{PerLayer: 4})
	for i := 0; i < 10; i++ {
		r.Record(Record{Layer: LayerNetLog, Kind: KindTxnCommit, Txn: uint64(i)})
	}
	recs := r.LayerRecords(LayerNetLog, 0)
	if len(recs) != 4 {
		t.Fatalf("held %d records after wrap, want 4", len(recs))
	}
	for i, rec := range recs {
		if want := uint64(6 + i); rec.Txn != want {
			t.Fatalf("slot %d holds txn %d, want %d (newest four)", i, rec.Txn, want)
		}
	}
	if got := r.Laps.Load(); got != 6 {
		t.Fatalf("Laps=%d, want 6", got)
	}
}

func TestLayersAreIndependent(t *testing.T) {
	r := New(Options{PerLayer: 4})
	r.Record(Record{Layer: LayerController, Kind: KindEventDispatched})
	r.Record(Record{Layer: LayerCrashPad, Kind: KindPolicyDecision})
	r.Record(Record{Layer: NumLayers + 3}) // out of range: dropped
	if n := len(r.LayerRecords(LayerController, 0)); n != 1 {
		t.Fatalf("controller ring holds %d, want 1", n)
	}
	if n := len(r.LayerRecords(LayerCrashPad, 0)); n != 1 {
		t.Fatalf("crashpad ring holds %d, want 1", n)
	}
	if n := len(r.Snapshot()); n != 2 {
		t.Fatalf("snapshot holds %d, want 2", n)
	}
}

func TestCorrelatedFiltersByAppTraceTxn(t *testing.T) {
	r := New(Options{PerLayer: 16})
	r.Record(Record{Layer: LayerController, Kind: KindEventDispatched, Trace: 0xabc, EvSeq: 7})
	r.Record(Record{Layer: LayerNetLog, Kind: KindTxnBegin, Txn: 42, Trace: 0xabc})
	r.Record(Record{Layer: LayerAppVisor, Kind: KindCrashDetected, App: "lswitch"})
	r.Record(Record{Layer: LayerAppVisor, Kind: KindStubRespawn, App: "other"})
	r.Record(Record{Layer: LayerCrashPad, Kind: KindPolicyDecision, App: "lswitch", Trace: 0xabc})

	got := r.Correlated("lswitch", 0xabc, 42, 8)
	if len(got["controller"]) != 1 {
		t.Fatalf("controller records = %v", got["controller"])
	}
	if len(got["netlog"]) != 1 || got["netlog"][0].Txn != 42 {
		t.Fatalf("netlog records = %v", got["netlog"])
	}
	av := got["appvisor"]
	if len(av) != 1 || av[0].App != "lswitch" {
		t.Fatalf("appvisor records should exclude other app: %v", av)
	}
	if len(got["crashpad"]) != 1 {
		t.Fatalf("crashpad records = %v", got["crashpad"])
	}
	if _, ok := got["checkpoint"]; ok {
		t.Fatalf("empty layer should be omitted")
	}
}

func TestCorrelatedBoundsPerLayer(t *testing.T) {
	r := New(Options{PerLayer: 64})
	for i := 0; i < 40; i++ {
		r.Record(Record{Layer: LayerNetLog, Kind: KindTxnCommit, Txn: uint64(i)})
	}
	got := r.Correlated("", 0, 0, 5)
	recs := got["netlog"]
	if len(recs) != 5 {
		t.Fatalf("correlated kept %d, want 5", len(recs))
	}
	if recs[0].Txn != 35 || recs[4].Txn != 39 {
		t.Fatalf("correlated should keep the newest five, oldest first: %v", recs)
	}
}

// TestConcurrentWrapHammer drives many writers through a tiny ring so
// slots wrap constantly while a reader snapshots, proving the
// publication scheme race-clean (run under -race in CI) and that every
// observed record is internally consistent.
func TestConcurrentWrapHammer(t *testing.T) {
	r := New(Options{PerLayer: 64})
	const writers = 8
	const perWriter = 5000

	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() { // concurrent reader
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, rec := range r.Snapshot() {
				if rec.Seq == 0 || rec.TS == 0 {
					panic(fmt.Sprintf("torn record observed: %+v", rec))
				}
			}
		}
	}()
	var writersWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func(w int) {
			defer writersWG.Done()
			app := fmt.Sprintf("app%d", w)
			for i := 0; i < perWriter; i++ {
				r.Record(Record{
					Layer: Layer(uint64(w+i) % uint64(NumLayers)),
					Kind:  KindEventDispatched,
					App:   app,
					EvSeq: uint64(i),
				})
			}
		}(w)
	}
	writersWG.Wait()
	close(stop)
	readers.Wait()

	if got := r.Records.Load(); got != writers*perWriter {
		t.Fatalf("Records=%d, want %d", got, writers*perWriter)
	}
	// Every ring is full (far more writes than capacity) and the
	// newest records survived.
	total := 0
	var maxSeq uint64
	for l := Layer(0); l < NumLayers; l++ {
		recs := r.LayerRecords(l, 0)
		total += len(recs)
		for _, rec := range recs {
			if rec.Seq > maxSeq {
				maxSeq = rec.Seq
			}
		}
	}
	if total != int(NumLayers)*64 {
		t.Fatalf("held %d records, want %d full rings", total, int(NumLayers)*64)
	}
	if maxSeq != writers*perWriter {
		t.Fatalf("newest seq %d lost, want %d", maxSeq, writers*perWriter)
	}
	if r.Laps.Load() == 0 {
		t.Fatalf("expected wrap-around laps under hammer")
	}
}

func TestInstrumentRegistersCounters(t *testing.T) {
	reg := metrics.NewRegistry()
	r := New(Options{})
	r.Instrument(reg)
	r.Record(Record{Layer: LayerController})
	if got := r.Records.Load(); got != 1 {
		t.Fatalf("Records=%d, want 1", got)
	}
}
