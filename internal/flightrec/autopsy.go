package flightrec

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Autopsy is the assembled postmortem for one failure: what died, what
// the stack decided, how long each recovery phase took, and the flight
// records that witnessed it. It marshals to JSON for /debug/autopsy and
// the on-disk store, and renders to human text for terminals.
type Autopsy struct {
	ID             int      `json:"id"`
	OpenedUnixNano int64    `json:"opened_unix_nano"`
	App            string   `json:"app"`
	Trigger        string   `json:"trigger"` // app-crash | byzantine | durable-recovery | chaos-invariant
	Class          string   `json:"class,omitempty"`
	Culprit        string   `json:"culprit,omitempty"` // the event being handled when it died
	TraceID        string   `json:"trace_id,omitempty"`
	TicketID       int      `json:"ticket_id,omitempty"`
	Policy         string   `json:"policy,omitempty"`
	Decision       string   `json:"decision,omitempty"`
	Outcome        string   `json:"outcome,omitempty"`
	PanicValue     string   `json:"panic_value,omitempty"`
	Violations     []string `json:"violations,omitempty"`
	Notes          []string `json:"notes,omitempty"`

	// Timeline always holds all six recovery phases in canonical order.
	Timeline        []PhaseDuration `json:"timeline"`
	RecoverySeconds float64         `json:"recovery_seconds"`

	// Records maps layer name -> the last correlated flight records,
	// oldest first.
	Records map[string][]Record `json:"records,omitempty"`
}

// Render formats the autopsy as human-readable text.
func (a *Autopsy) Render() string {
	if a == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "=== autopsy #%d: %s (%s) ===\n", a.ID, a.App, a.Trigger)
	if a.OpenedUnixNano != 0 {
		fmt.Fprintf(&b, "opened:   %s\n", time.Unix(0, a.OpenedUnixNano).UTC().Format(time.RFC3339Nano))
	}
	if a.Class != "" {
		fmt.Fprintf(&b, "class:    %s\n", a.Class)
	}
	if a.Culprit != "" {
		fmt.Fprintf(&b, "culprit:  %s\n", a.Culprit)
	}
	if a.TraceID != "" {
		fmt.Fprintf(&b, "trace:    %s\n", a.TraceID)
	}
	if a.TicketID != 0 {
		fmt.Fprintf(&b, "ticket:   #%d\n", a.TicketID)
	}
	if a.Policy != "" {
		fmt.Fprintf(&b, "policy:   %s  decision: %s  outcome: %s\n", a.Policy, a.Decision, a.Outcome)
	}
	if a.PanicValue != "" {
		fmt.Fprintf(&b, "panic:    %s\n", a.PanicValue)
	}
	for _, v := range a.Violations {
		fmt.Fprintf(&b, "violation: %s\n", v)
	}
	for _, n := range a.Notes {
		fmt.Fprintf(&b, "note:     %s\n", n)
	}
	fmt.Fprintf(&b, "recovery: %.6fs\n", a.RecoverySeconds)
	b.WriteString("timeline:\n")
	for _, pd := range a.Timeline {
		fmt.Fprintf(&b, "  %-18s %10.6fs\n", pd.Phase, pd.Seconds)
	}
	if len(a.Records) > 0 {
		layers := make([]string, 0, len(a.Records))
		for l := range a.Records {
			layers = append(layers, l)
		}
		sort.Strings(layers)
		for _, l := range layers {
			fmt.Fprintf(&b, "records[%s]:\n", l)
			for _, rec := range a.Records[l] {
				fmt.Fprintf(&b, "  %s\n", rec.String())
			}
		}
	}
	return b.String()
}
