package flightrec

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func sampleAutopsy(app string) *Autopsy {
	return &Autopsy{
		App:      app,
		Trigger:  "app-crash",
		Class:    "fail-stop",
		Culprit:  "packet-in seq=7 dpid=3",
		Policy:   "rollback-replay",
		Decision: "restore+replay",
		Outcome:  "recovered",
		Timeline: (&Timeline{}).Phases(),
		Records: map[string][]Record{
			"crashpad": {{Seq: 1, Layer: LayerCrashPad, Kind: KindPolicyDecision, App: app}},
		},
	}
}

func TestStorePersistsParseableAutopsies(t *testing.T) {
	dir := t.TempDir()
	s := NewStore(dir, 8)
	id := s.Add(sampleAutopsy("lswitch"))
	if id != 1 {
		t.Fatalf("first id = %d, want 1", id)
	}
	path := filepath.Join(dir, "autopsy-000001.json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("autopsy not persisted: %v", err)
	}
	var back Autopsy
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("persisted autopsy does not parse: %v", err)
	}
	if back.App != "lswitch" || back.ID != 1 || back.OpenedUnixNano == 0 {
		t.Fatalf("round trip lost fields: %+v", back)
	}
	if len(back.Timeline) != int(NumPhases) {
		t.Fatalf("persisted timeline has %d phases, want %d", len(back.Timeline), NumPhases)
	}
	if got := s.Persisted.Load(); got != 1 {
		t.Fatalf("Persisted=%d, want 1", got)
	}
}

func TestStoreBoundsWindow(t *testing.T) {
	s := NewStore("", 3)
	for i := 0; i < 5; i++ {
		s.Add(sampleAutopsy("a"))
	}
	all := s.All()
	if len(all) != 3 {
		t.Fatalf("retained %d autopsies, want 3", len(all))
	}
	if all[0].ID != 3 || all[2].ID != 5 {
		t.Fatalf("window should keep newest ids, got %d..%d", all[0].ID, all[2].ID)
	}
	if s.Get(5) == nil || s.Get(1) != nil {
		t.Fatalf("Get window mismatch")
	}
}

func TestStoreFillsMissingTimeline(t *testing.T) {
	s := NewStore("", 4)
	s.Add(&Autopsy{App: "x", Trigger: "chaos-invariant"})
	a := s.All()[0]
	if len(a.Timeline) != int(NumPhases) {
		t.Fatalf("store must backfill a complete timeline, got %d phases", len(a.Timeline))
	}
}

func TestStoreHTTPHandler(t *testing.T) {
	s := NewStore("", 4)
	s.Add(sampleAutopsy("lswitch"))
	s.Add(sampleAutopsy("router"))

	// Human text by default.
	rr := httptest.NewRecorder()
	s.HTTPHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/autopsy", nil))
	body := rr.Body.String()
	if !strings.Contains(body, "autopsy #1: lswitch") || !strings.Contains(body, "autopsy #2: router") {
		t.Fatalf("text body missing autopsies:\n%s", body)
	}
	if !strings.Contains(body, "checkpoint-restore") {
		t.Fatalf("text body missing timeline:\n%s", body)
	}

	// JSON for machines.
	rr = httptest.NewRecorder()
	s.HTTPHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/autopsy?format=json", nil))
	var list []*Autopsy
	if err := json.Unmarshal(rr.Body.Bytes(), &list); err != nil {
		t.Fatalf("json body does not parse: %v", err)
	}
	if len(list) != 2 {
		t.Fatalf("json holds %d autopsies, want 2", len(list))
	}

	// Single report by id.
	rr = httptest.NewRecorder()
	s.HTTPHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/autopsy?id=2&format=json", nil))
	list = nil
	if err := json.Unmarshal(rr.Body.Bytes(), &list); err != nil || len(list) != 1 || list[0].App != "router" {
		t.Fatalf("id query returned %v (err %v)", list, err)
	}

	// Missing id is a 404.
	rr = httptest.NewRecorder()
	s.HTTPHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/autopsy?id=99", nil))
	if rr.Code != 404 {
		t.Fatalf("missing id status = %d, want 404", rr.Code)
	}

	// Nil store serves a 404 rather than panicking.
	rr = httptest.NewRecorder()
	(*Store)(nil).HTTPHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/autopsy", nil))
	if rr.Code != 404 {
		t.Fatalf("nil store status = %d, want 404", rr.Code)
	}
}
