package mcs

import (
	"math/rand"
	"testing"
	"testing/quick"

	"legosdn/internal/checkpoint"
	"legosdn/internal/controller"
)

func evts(seqs ...uint64) []controller.Event {
	out := make([]controller.Event, len(seqs))
	for i, s := range seqs {
		out[i] = controller.Event{Seq: s, Kind: controller.EventPacketIn}
	}
	return out
}

func seqs(events []controller.Event) []uint64 {
	out := make([]uint64, len(events))
	for i, e := range events {
		out[i] = e.Seq
	}
	return out
}

// failsIfContains builds a predicate that fails iff all the named seqs
// are present, in order.
func failsIfContains(required ...uint64) FailFunc {
	return func(events []controller.Event) bool {
		i := 0
		for _, e := range events {
			if i < len(required) && e.Seq == required[i] {
				i++
			}
		}
		return i == len(required)
	}
}

func TestMinimizeSingleCulprit(t *testing.T) {
	trace := evts(1, 2, 3, 4, 5, 6, 7, 8)
	min, st := Minimize(trace, failsIfContains(5))
	if len(min) != 1 || min[0].Seq != 5 {
		t.Fatalf("minimal = %v", seqs(min))
	}
	if st.OriginalLen != 8 || st.MinimalLen != 1 || st.Probes == 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestMinimizePair(t *testing.T) {
	trace := evts(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12)
	min, _ := Minimize(trace, failsIfContains(3, 9))
	got := seqs(min)
	if len(got) != 2 || got[0] != 3 || got[1] != 9 {
		t.Fatalf("minimal = %v", got)
	}
}

func TestMinimizeNonFailingTrace(t *testing.T) {
	min, st := Minimize(evts(1, 2, 3), func([]controller.Event) bool { return false })
	if min != nil || st.MinimalLen != 0 {
		t.Fatalf("non-failing trace minimized to %v", seqs(min))
	}
	if min, _ := Minimize(nil, failsIfContains()); min != nil {
		t.Fatal("empty trace should yield nil")
	}
}

func TestMinimizeWholeTraceNeeded(t *testing.T) {
	trace := evts(1, 2, 3, 4)
	min, _ := Minimize(trace, failsIfContains(1, 2, 3, 4))
	if len(min) != 4 {
		t.Fatalf("minimal = %v", seqs(min))
	}
}

// Property: the result always fails, and removing any one event makes
// it pass (1-minimality), for random required subsets.
func TestQuickMinimizeOneMinimal(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 4 + r.Intn(20)
		trace := make([]controller.Event, n)
		for i := range trace {
			trace[i] = controller.Event{Seq: uint64(i + 1)}
		}
		// Pick 1-3 random required events (ordered).
		k := 1 + r.Intn(3)
		required := map[uint64]bool{}
		for len(required) < k {
			required[uint64(1+r.Intn(n))] = true
		}
		var req []uint64
		for i := 1; i <= n; i++ {
			if required[uint64(i)] {
				req = append(req, uint64(i))
			}
		}
		fails := failsIfContains(req...)
		min, _ := Minimize(trace, fails)
		if !fails(min) {
			return false
		}
		for drop := range min {
			reduced := append(append([]controller.Event(nil), min[:drop]...), min[drop+1:]...)
			if fails(reduced) {
				return false // not 1-minimal
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestReplayFails(t *testing.T) {
	// App crashes when it has seen two PacketIns with seq >= 10.
	newApp := func() controller.App { return &accApp{} }
	fails := ReplayFails(newApp, nil)
	if !fails(evts(10, 11)) {
		t.Fatal("predicate should fail on two big seqs")
	}
	if fails(evts(1, 10)) {
		t.Fatal("predicate should pass on one big seq")
	}
	// Use it end-to-end with Minimize.
	min, _ := Minimize(evts(1, 2, 10, 3, 11, 4), fails)
	got := seqs(min)
	if len(got) != 2 || got[0] != 10 || got[1] != 11 {
		t.Fatalf("minimal = %v", got)
	}
}

// accApp crashes when the accumulated big-seq count reaches 2 — a
// multi-event (cumulative) failure, the §5 scenario.
type accApp struct{ big int }

func (a *accApp) Name() string                          { return "acc" }
func (a *accApp) Subscriptions() []controller.EventKind { return controller.AllEventKinds() }
func (a *accApp) HandleEvent(_ controller.Context, ev controller.Event) error {
	if ev.Seq >= 10 {
		a.big++
		if a.big >= 2 {
			panic("cumulative failure")
		}
	}
	return nil
}

func TestPickCheckpoint(t *testing.T) {
	store := checkpoint.NewStore(0)
	store.Put("acc", 1, []byte("a"))
	store.Put("acc", 8, []byte("b"))
	store.Put("acc", 12, []byte("c"))

	cp := PickCheckpoint(store, "acc", evts(10, 11))
	if cp == nil || cp.Seq != 8 {
		t.Fatalf("checkpoint = %+v", cp)
	}
	if PickCheckpoint(store, "acc", nil) != nil {
		t.Fatal("empty minimal should pick nothing")
	}
	if got := PickCheckpoint(store, "acc", evts(13)); got == nil || got.Seq != 12 {
		t.Fatalf("checkpoint = %+v", got)
	}
}
