// Package mcs finds Minimal Causal Sequences: the smallest subsequence
// of an event trace that still triggers an SDN-App failure. It plays
// the role STS plays in §5 of the LegoSDN paper — when a failure is
// induced by an accumulation of events rather than the last one,
// Crash-Pad minimizes the recorded trace against a fresh app replica
// and rolls back to the checkpoint preceding the first inducing event.
//
// The minimizer is the classic ddmin delta-debugging algorithm
// (Zeller's "Simplifying and Isolating Failure-Inducing Input"),
// specialized to event subsequences, with memoization of tested
// subsets. It assumes the failure predicate is deterministic, which is
// the paper's stated assumption for SDN-App bugs.
package mcs

import (
	"fmt"
	"runtime/debug"
	"strings"

	"legosdn/internal/checkpoint"
	"legosdn/internal/controller"
)

// FailFunc reports whether replaying exactly this event sequence (from
// a fresh app instance) reproduces the failure. It must be
// deterministic.
type FailFunc func(events []controller.Event) bool

// Stats describes one minimization run.
type Stats struct {
	OriginalLen int
	MinimalLen  int
	Probes      int // predicate evaluations
	CacheHits   int
}

// Minimize returns a 1-minimal subsequence of trace that still fails:
// removing any single event from the result makes the failure vanish.
// The input trace must itself fail; if it does not, Minimize returns
// nil.
func Minimize(trace []controller.Event, fails FailFunc) ([]controller.Event, Stats) {
	st := Stats{OriginalLen: len(trace)}
	cache := make(map[string]bool)
	probe := func(events []controller.Event) bool {
		key := subsetKey(events)
		if v, ok := cache[key]; ok {
			st.CacheHits++
			return v
		}
		st.Probes++
		v := fails(events)
		cache[key] = v
		return v
	}
	if len(trace) == 0 || !probe(trace) {
		return nil, st
	}

	cur := append([]controller.Event(nil), trace...)
	n := 2
	for len(cur) >= 2 {
		chunks := split(cur, n)
		reduced := false

		// Try each chunk alone.
		for _, c := range chunks {
			if probe(c) {
				cur = c
				n = 2
				reduced = true
				break
			}
		}
		if !reduced {
			// Try each complement.
			for i := range chunks {
				comp := complement(chunks, i)
				if probe(comp) {
					cur = comp
					n = max(n-1, 2)
					reduced = true
					break
				}
			}
		}
		if !reduced {
			if n >= len(cur) {
				break // 1-minimal
			}
			n = min(2*n, len(cur))
		}
	}
	st.MinimalLen = len(cur)
	return cur, st
}

func split(events []controller.Event, n int) [][]controller.Event {
	out := make([][]controller.Event, 0, n)
	size := len(events) / n
	rem := len(events) % n
	start := 0
	for i := 0; i < n; i++ {
		end := start + size
		if i < rem {
			end++
		}
		if end > start {
			out = append(out, events[start:end])
		}
		start = end
	}
	return out
}

func complement(chunks [][]controller.Event, skip int) []controller.Event {
	var out []controller.Event
	for i, c := range chunks {
		if i != skip {
			out = append(out, c...)
		}
	}
	return out
}

// subsetKey identifies a subsequence by its event sequence numbers.
func subsetKey(events []controller.Event) string {
	var sb strings.Builder
	for _, e := range events {
		fmt.Fprintf(&sb, "%d,", e.Seq)
	}
	return sb.String()
}

// ReplayFails builds a deterministic failure predicate: instantiate a
// fresh app via newApp, feed it the candidate events against ctx (which
// may be a no-op recorder), and report whether it panics.
func ReplayFails(newApp func() controller.App, ctx controller.Context) FailFunc {
	return func(events []controller.Event) bool {
		app := newApp()
		crashed := false
		func() {
			defer func() {
				if r := recover(); r != nil {
					crashed = true
					_ = debug.Stack()
				}
			}()
			for _, ev := range events {
				_ = app.HandleEvent(ctx, ev)
			}
		}()
		return crashed
	}
}

// PickCheckpoint chooses the checkpoint Crash-Pad should roll back to
// once the minimal sequence is known: the newest image strictly older
// than the first inducing event. Returns nil when no checkpoint
// predates the sequence (the app must restart fresh).
func PickCheckpoint(store *checkpoint.Store, app string, minimal []controller.Event) *checkpoint.Checkpoint {
	if len(minimal) == 0 {
		return nil
	}
	first := minimal[0].Seq
	if first == 0 {
		return nil
	}
	return store.Before(app, first)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
