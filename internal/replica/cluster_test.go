package replica

import (
	"fmt"
	"testing"
	"time"

	"legosdn/internal/controller"
	"legosdn/internal/durable"
	"legosdn/internal/netsim"
	"legosdn/internal/openflow"
)

// testApp installs one idempotent rule per PacketIn, giving every
// journal transaction real switch state to replicate and roll back.
type testApp struct{ name string }

func (a *testApp) Name() string { return a.name }
func (a *testApp) Subscriptions() []controller.EventKind {
	return []controller.EventKind{controller.EventPacketIn}
}
func (a *testApp) HandleEvent(ctx controller.Context, ev controller.Event) error {
	m := openflow.MatchAll()
	m.Wildcards &^= openflow.WildcardDlType | openflow.WildcardNwProto | openflow.WildcardTpDst
	m.DlType = 0x0800
	m.NwProto = 6
	m.TpDst = uint16(8000 + ev.Seq%64)
	return ctx.SendFlowMod(ev.DPID, &openflow.FlowMod{
		Match:    m,
		Command:  openflow.FlowModAdd,
		Priority: 100,
		BufferID: openflow.BufferIDNone,
		OutPort:  openflow.PortNone,
		Actions:  []openflow.Action{&openflow.ActionOutput{Port: 100}},
	})
}

// orphanRule is the mid-transaction rule the failover must roll back.
func orphanRule(i int) *openflow.FlowMod {
	m := openflow.MatchAll()
	m.Wildcards &^= openflow.WildcardDlType | openflow.WildcardNwProto | openflow.WildcardTpDst
	m.DlType = 0x0800
	m.NwProto = 6
	m.TpDst = uint16(9700 + i)
	return &openflow.FlowMod{
		Match:    m,
		Command:  openflow.FlowModAdd,
		Priority: 210,
		BufferID: openflow.BufferIDNone,
		OutPort:  openflow.PortNone,
		Actions:  []openflow.Action{&openflow.ActionOutput{Port: 100}},
	}
}

func testCluster(t *testing.T, mode CommitMode) (*Cluster, *netsim.Network) {
	t.Helper()
	n := netsim.Single(2, nil)
	c := New(Options{
		Dir:             t.TempDir(),
		Replicas:        3,
		CommitMode:      mode,
		LeaseTTL:        80 * time.Millisecond,
		HeartbeatEvery:  20 * time.Millisecond,
		CheckpointEvery: 4,
		WAL:             durable.Options{NoSync: true},
		Apps: []func() controller.App{
			func() controller.App { return &testApp{name: "rec0"} },
		},
	})
	if err := c.Start(n); err != nil {
		t.Fatalf("cluster start: %v", err)
	}
	t.Cleanup(c.Close)
	return c, n
}

func injectN(t *testing.T, c *Cluster, count int) {
	t.Helper()
	stack := c.Stack()
	for i := 0; i < count; i++ {
		target := stack.Controller.Processed.Load() + 1
		if err := stack.Controller.Inject(controller.Event{
			Kind: controller.EventPacketIn,
			DPID: 1,
			Message: &openflow.PacketIn{
				BufferID: openflow.BufferIDNone,
				InPort:   100,
				Reason:   openflow.PacketInReasonNoMatch,
			},
		}); err != nil {
			t.Fatalf("inject %d: %v", i, err)
		}
		waitFor(t, fmt.Sprintf("event %d processed", i), func() bool {
			return stack.Controller.Processed.Load() >= target
		})
	}
}

// TestClusterKillLeaderFailover is the end-to-end failover path: a
// 3-replica quorum-commit cluster loses its leader mid-transaction; a
// follower must win the lease, roll the orphaned transaction back from
// its replicated journal, and resume dispatching new events.
func TestClusterKillLeaderFailover(t *testing.T) {
	c, n := testCluster(t, CommitQuorum)
	injectN(t, c, 6)

	// Quorum commit: by the time each txn committed, followers held it.
	if lag := c.ReplicationLag(); lag != 0 {
		t.Fatalf("replication lag %d after quorum-committed workload", lag)
	}

	// Open a transaction, touch the switch, and die before resolution.
	stack := c.Stack()
	tx := stack.NetLog.Begin()
	stack.NetLog.SetActive(tx)
	for i := 0; i < 3; i++ {
		if err := stack.Controller.SendFlowMod(1, orphanRule(i)); err != nil {
			t.Fatalf("mid-txn flow mod: %v", err)
		}
	}
	stack.NetLog.SetActive(nil)
	if err := stack.Controller.Barrier(1); err != nil {
		t.Fatal(err)
	}
	if err := c.KillLeader(); err != nil {
		t.Fatal(err)
	}

	successor, err := c.WaitLeader("node0", 15*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.LeaderName(); got == "node0" || got == "" {
		t.Fatalf("leader after failover = %q", got)
	}
	if c.Failovers() != 1 {
		t.Fatalf("failovers = %d, want 1", c.Failovers())
	}
	if c.LastMTTR() <= 0 {
		t.Fatal("failover MTTR not recorded")
	}

	// The orphaned transaction was found in the replicated journal and
	// rolled back against the still-connected switch.
	if got := c.State().RecoveredTxns(); got < 1 {
		t.Fatalf("recovered txns = %d, want >= 1", got)
	}
	for _, e := range n.Switch(1).Table().Entries() {
		if e.Priority == 210 {
			t.Fatalf("rolled-back rule still installed: tp_dst=%d", e.Match.TpDst)
		}
	}

	// New events flow through the successor.
	injectN(t, c, 3)
	if successor.Controller.Crashed() {
		t.Fatal("successor controller crashed")
	}

	// The failover autopsy covers election and catch-up.
	var sawFailover bool
	for _, a := range successor.Autopsies.All() {
		if a.Trigger == "failover" {
			sawFailover = true
			byName := map[string]bool{}
			for _, p := range a.Timeline {
				byName[p.Phase] = true
			}
			for _, phase := range []string{"detect", "election", "catch-up", "resume"} {
				if !byName[phase] {
					t.Fatalf("failover autopsy timeline missing phase %q", phase)
				}
			}
		}
	}
	if !sawFailover {
		t.Fatal("no failover autopsy recorded on the successor")
	}
}

// TestClusterIsolatedLeaderIsFenced partitions the leader instead of
// killing it: after a successor is promoted, the old leader's
// state-changing messages must bounce off the switches (EPERM slave
// fencing), so a split brain cannot corrupt the data plane.
func TestClusterIsolatedLeaderIsFenced(t *testing.T) {
	c, n := testCluster(t, CommitAsync)
	injectN(t, c, 4)

	if err := c.IsolateLeader(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.WaitLeader("node0", 15*time.Second); err != nil {
		t.Fatal(err)
	}

	// The fenced ex-leader still runs and still believes it can write.
	old := c.OldLeaderStack()
	if old == nil {
		t.Fatal("isolated leader stack not retained")
	}
	before := len(n.Switch(1).Table().Entries())
	if err := old.Controller.SendFlowMod(1, orphanRule(9)); err != nil {
		t.Fatalf("fenced send errored at the controller: %v", err)
	}
	_ = old.Controller.Barrier(1)
	for _, e := range n.Switch(1).Table().Entries() {
		if e.Priority == 210 {
			t.Fatal("fenced ex-leader installed a rule through a slave connection")
		}
	}
	if got := len(n.Switch(1).Table().Entries()); got != before {
		t.Fatalf("table grew from %d to %d entries via a fenced connection", before, got)
	}

	// The healthy side keeps serving.
	injectN(t, c, 3)
}
