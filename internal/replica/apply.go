package replica

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"time"

	"legosdn/internal/durable"
	"legosdn/internal/metrics"
)

// Applier is the follower side of one replication connection: it
// receives record/reset frames, acknowledges them on receipt, and
// replays them into shadow WALs under the follower's state directory —
// the same <dir>/netlog and <dir>/checkpoints layout durable.OpenState
// expects, so promotion is just "close the shadow handles, OpenState
// the directory".
//
// Acks are sent on receipt, not on apply: the leader's quorum wait
// certifies that a follower *holds* the record, and a promoted follower
// drains its apply queue (Drain) before serving, so nothing acked can
// be lost short of the follower also dying — the f=1 failure budget a
// 3-replica deployment tolerates. Apply is idempotent: positions at or
// below the last applied one are counted as duplicates and skipped, so
// duplicate segment delivery (a shipper retry after partial failover)
// is harmless.
type Applier struct {
	dir  string
	opts durable.Options

	conn net.Conn

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []frame
	pending int // frames received but not yet applied
	wals    map[byte]*durable.WAL
	last    map[byte]uint64 // last applied position per stream
	recvd   map[byte]uint64 // highest received position per stream
	closed  bool
	failure error

	dups   metrics.Counter
	resets metrics.Counter

	applyDelay time.Duration // test hook: simulated apply lag
	wg         sync.WaitGroup
}

// NewApplier opens (or creates) the shadow WALs under dir and starts
// the receive and apply loops on conn. applyDelay > 0 delays each
// applied frame — the follower-lag test hook.
func NewApplier(dir string, conn net.Conn, opts durable.Options, applyDelay time.Duration) (*Applier, error) {
	a := &Applier{
		dir:        dir,
		opts:       opts,
		conn:       conn,
		wals:       make(map[byte]*durable.WAL),
		last:       make(map[byte]uint64),
		recvd:      make(map[byte]uint64),
		applyDelay: applyDelay,
	}
	a.cond = sync.NewCond(&a.mu)
	for _, id := range []byte{streamNetlog, streamCheckpoints} {
		w, err := durable.Open(a.streamDir(id), opts)
		if err != nil {
			a.closeWALs()
			return nil, fmt.Errorf("replica: opening shadow WAL %s: %w", streamName(id), err)
		}
		a.wals[id] = w
		// A shadow WAL that already holds records (a follower restarting)
		// counts them as applied, so a duplicate prefix re-ship after the
		// reset handshake cannot double-apply. The shipper always opens
		// with a reset frame, which overrides this baseline anyway.
		a.last[id] = w.EndPos()
	}
	a.wg.Add(2)
	go a.recvLoop()
	go a.applyLoop()
	return a, nil
}

func (a *Applier) streamDir(id byte) string {
	return filepath.Join(a.dir, streamName(id))
}

// recvLoop reads frames, enqueues them for apply, and acks immediately.
func (a *Applier) recvLoop() {
	defer a.wg.Done()
	for {
		f, err := readFrame(a.conn)
		if err != nil {
			a.mu.Lock()
			a.cond.Broadcast()
			a.mu.Unlock()
			return
		}
		a.mu.Lock()
		a.queue = append(a.queue, f)
		a.pending++
		if f.Pos > a.recvd[f.Stream] || f.Kind == frameReset {
			a.recvd[f.Stream] = f.Pos
		}
		a.cond.Broadcast()
		a.mu.Unlock()
		// Ack on receipt: the recvLoop is this connection's only writer.
		if err := writeFrame(a.conn, frame{Kind: frameAck, Stream: f.Stream, Pos: f.Pos}); err != nil {
			return
		}
	}
}

// applyLoop drains the queue into the shadow WALs.
func (a *Applier) applyLoop() {
	defer a.wg.Done()
	for {
		a.mu.Lock()
		for len(a.queue) == 0 && !a.closed {
			a.cond.Wait()
		}
		if a.closed && len(a.queue) == 0 {
			a.mu.Unlock()
			return
		}
		f := a.queue[0]
		a.queue = a.queue[1:]
		a.mu.Unlock()

		if a.applyDelay > 0 {
			time.Sleep(a.applyDelay)
		}
		if err := a.apply(f); err != nil {
			a.mu.Lock()
			if a.failure == nil {
				a.failure = err
			}
			a.mu.Unlock()
		}
		a.mu.Lock()
		a.pending--
		a.cond.Broadcast()
		a.mu.Unlock()
	}
}

func (a *Applier) apply(f frame) error {
	switch f.Kind {
	case frameReset:
		// New WAL generation: the history this shadow holds was replaced
		// by a snapshot (or a new leader started a fresh stream). Wipe and
		// restart applying at Pos+1.
		a.mu.Lock()
		w := a.wals[f.Stream]
		a.mu.Unlock()
		if w != nil {
			if err := w.Close(); err != nil {
				return err
			}
		}
		if err := os.RemoveAll(a.streamDir(f.Stream)); err != nil {
			return fmt.Errorf("replica: wiping shadow WAL on reset: %w", err)
		}
		nw, err := durable.Open(a.streamDir(f.Stream), a.opts)
		if err != nil {
			return fmt.Errorf("replica: reopening shadow WAL after reset: %w", err)
		}
		a.mu.Lock()
		a.wals[f.Stream] = nw
		a.last[f.Stream] = f.Pos
		a.mu.Unlock()
		a.resets.Inc()
		return nil
	case frameRecord:
		a.mu.Lock()
		w := a.wals[f.Stream]
		dup := f.Pos <= a.last[f.Stream]
		a.mu.Unlock()
		if dup {
			a.dups.Inc()
			return nil
		}
		if w == nil {
			return fmt.Errorf("replica: record for unknown stream %d", f.Stream)
		}
		if err := w.Append(f.RecType, f.Payload); err != nil {
			return err
		}
		a.mu.Lock()
		a.last[f.Stream] = f.Pos
		a.mu.Unlock()
		return nil
	default:
		return nil
	}
}

// Drain blocks until every frame received so far has been applied (or
// the timeout passes). Promotion calls this in the catch-up phase.
func (a *Applier) Drain(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	a.mu.Lock()
	defer a.mu.Unlock()
	for a.pending > 0 {
		if time.Now().After(deadline) {
			return fmt.Errorf("replica: %d frame(s) still unapplied after %v", a.pending, timeout)
		}
		a.mu.Unlock()
		time.Sleep(time.Millisecond)
		a.mu.Lock()
	}
	return a.failure
}

// Backlog reports frames received but not yet applied.
func (a *Applier) Backlog() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.pending
}

// ReceivedPos reports the highest position received on a stream — the
// up-to-dateness measure leader election uses to pick the best
// candidate.
func (a *Applier) ReceivedPos(stream byte) uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.recvd[stream]
}

// AppliedPos reports the highest position applied on a stream.
func (a *Applier) AppliedPos(stream byte) uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.last[stream]
}

// Dups counts duplicate deliveries skipped; Resets the generation wipes
// performed.
func (a *Applier) Dups() uint64   { return a.dups.Load() }
func (a *Applier) Resets() uint64 { return a.resets.Load() }

// Close tears the applier down: the connection closes, both loops
// drain and exit, and the shadow WALs are synced shut — leaving the
// directory ready for durable.OpenState (promotion) or a later
// NewApplier (rejoining as a follower of a new leader).
func (a *Applier) Close() error {
	a.conn.Close()
	a.mu.Lock()
	a.closed = true
	a.cond.Broadcast()
	a.mu.Unlock()
	a.wg.Wait()
	return a.closeWALs()
}

func (a *Applier) closeWALs() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	var first error
	for id, w := range a.wals {
		if w == nil {
			continue
		}
		if err := w.Close(); err != nil && first == nil {
			first = err
		}
		a.wals[id] = nil
	}
	return first
}
