// Package replica is LegoSDN's replicated control plane: N core.Stack
// replicas behind a lease-based leader election, with the leader's
// durable WAL segments (NetLog journal + checkpoint log) shipped to
// followers over framed replication streams. Followers keep warm shadow
// copies of both logs; when the leader dies, a follower wins the lease,
// finishes recovery from its replicated journal (presumed-abort orphan
// handling, inverse replay against the still-connected switches via
// master/slave role transfer in netsim), and resumes dispatch.
//
// This closes the gap the paper leaves open: LegoSDN removes the
// app↔controller fate-sharing, but the controller itself is a single
// point of failure — the problem replicated-controller designs (Rama,
// SMaRtLight) attack with shared consistent state. The durable WAL is
// the natural replication log: every NetLog transaction record a
// switch's state depends on is journaled *before* the message reaches
// the switch, so a follower that holds the journal prefix can always
// roll the network back to a consistent point.
package replica

import (
	"sync"
	"time"
)

// Lease is the current leadership grant. Epoch increases on every
// change of holder, so a deposed leader's stale epoch is detectable
// (fencing).
type Lease struct {
	Holder  string
	Epoch   uint64
	Expires time.Time
}

// LeaseStore is the election substrate: a single compare-and-swap
// lease, modeling the external coordination service (etcd, ZooKeeper,
// or a quorum register) real deployments use. The holder renews within
// the TTL; anyone else can take over only after expiry.
type LeaseStore struct {
	now func() time.Time

	mu        sync.Mutex
	cur       Lease
	elections uint64
}

// NewLeaseStore builds a store on the given clock (nil = time.Now).
func NewLeaseStore(now func() time.Time) *LeaseStore {
	if now == nil {
		now = time.Now
	}
	return &LeaseStore{now: now}
}

// TryAcquire renews the lease if node already holds it, or grants it
// (bumping the epoch) if the lease is free or expired. Returns the
// resulting lease and whether node now holds it.
func (s *LeaseStore) TryAcquire(node string, ttl time.Duration) (Lease, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.now()
	switch {
	case s.cur.Holder == node:
		s.cur.Expires = now.Add(ttl)
		return s.cur, true
	case s.cur.Holder == "" || now.After(s.cur.Expires):
		s.cur = Lease{Holder: node, Epoch: s.cur.Epoch + 1, Expires: now.Add(ttl)}
		s.elections++
		return s.cur, true
	default:
		return s.cur, false
	}
}

// Release drops the lease if node holds it, letting a successor acquire
// without waiting out the TTL (planned handoff).
func (s *LeaseStore) Release(node string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cur.Holder == node {
		s.cur.Holder = ""
		s.cur.Expires = time.Time{}
	}
}

// Current returns the lease as last written (it may be expired; callers
// compare Expires against their own clock).
func (s *LeaseStore) Current() Lease {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cur
}

// Elections counts holder changes since the store was created.
func (s *LeaseStore) Elections() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.elections
}

// Elector is one node's view of the election: Step observes the store
// once and reports whether this node leads. It renews when leading and
// tries to acquire when the lease looks expired — the standard
// lease-loop a replica runs between heartbeats. Step is synchronous so
// tests can drive re-election flapping under a fake clock.
type Elector struct {
	Store *LeaseStore
	Node  string
	TTL   time.Duration

	leader bool
	epoch  uint64
}

// Step runs one election round. changed reports a leadership
// transition for this node (gained or lost) relative to the previous
// Step.
func (e *Elector) Step() (leader bool, epoch uint64, changed bool) {
	lease, held := e.Store.TryAcquire(e.Node, e.TTL)
	wasLeader := e.leader
	e.leader = held
	e.epoch = lease.Epoch
	return e.leader, e.epoch, e.leader != wasLeader
}

// Leading reports the last Step's outcome without touching the store.
func (e *Elector) Leading() bool { return e.leader }

// Epoch reports the lease epoch as of the last Step.
func (e *Elector) Epoch() uint64 { return e.epoch }
