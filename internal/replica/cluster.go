package replica

import (
	"fmt"
	"net"
	"path/filepath"
	"sync"
	"time"

	"legosdn/internal/controller"
	"legosdn/internal/core"
	"legosdn/internal/durable"
	"legosdn/internal/flightrec"
	"legosdn/internal/metrics"
	"legosdn/internal/netlog"
	"legosdn/internal/netsim"
	"legosdn/internal/openflow"
)

// CommitMode selects when a NetLog journal write is considered done.
type CommitMode int

const (
	// CommitAsync acknowledges a journal write once the leader's local
	// WAL holds it; replication to followers is best-effort background
	// shipping. Fastest, but a leader crash can lose the tail the
	// followers had not yet received (those transactions are then
	// presumed-aborted on the *old* leader's disk only).
	CommitAsync CommitMode = iota
	// CommitQuorum blocks each journal write until a majority of
	// replicas (leader included) hold the record, so any elected
	// successor's journal covers every operation a switch ever saw.
	CommitQuorum
)

func (m CommitMode) String() string {
	if m == CommitQuorum {
		return "quorum"
	}
	return "async"
}

// Options configures a replicated control plane.
type Options struct {
	// Dir is the root state directory; replica i lives in Dir/node<i>.
	Dir string
	// Replicas is the cluster size (default 3).
	Replicas int
	// Apps are the controller app factories every incarnation runs.
	Apps []func() controller.App
	// CommitMode picks async or wait-for-quorum journal commits.
	CommitMode CommitMode
	// LeaseTTL is the leadership lease duration (default 150ms); a dead
	// leader is replaceable one TTL after its last renewal.
	LeaseTTL time.Duration
	// HeartbeatEvery is the renewal/monitor cadence (default LeaseTTL/3).
	HeartbeatEvery time.Duration
	// QuorumTimeout bounds a quorum wait before the write degrades to a
	// journal error (absorbed by NetLog's JournalErrors counter —
	// availability over durability, matching journalAppend's contract).
	QuorumTimeout time.Duration
	// CheckpointEvery / EventTimeout pass through to core.Config.
	CheckpointEvery int
	EventTimeout    time.Duration
	// WAL tunes the durable logs on every node (NoSync speeds tests).
	WAL durable.Options
	// Metrics receives the cluster-level instruments (nil = private
	// registry). Each Stack incarnation always gets its own private
	// registry — re-registering stack metrics across failovers would
	// trip the strict duplicate gate.
	Metrics *metrics.Registry
	// Logf receives progress lines (nil = silent).
	Logf func(format string, args ...any)
	// AutopsyDir persists stack autopsies (including the failover one).
	AutopsyDir string
	// ApplierDelay artificially delays each applied frame on followers —
	// the follower-lag chaos hook.
	ApplierDelay time.Duration
	// Clock overrides the lease clock (nil = time.Now).
	Clock func() time.Time
}

func (o *Options) withDefaults() Options {
	opts := *o
	if opts.Replicas <= 0 {
		opts.Replicas = 3
	}
	if opts.LeaseTTL <= 0 {
		opts.LeaseTTL = 150 * time.Millisecond
	}
	if opts.HeartbeatEvery <= 0 {
		opts.HeartbeatEvery = opts.LeaseTTL / 3
	}
	if opts.QuorumTimeout <= 0 {
		opts.QuorumTimeout = 2 * time.Second
	}
	if opts.Metrics == nil {
		opts.Metrics = metrics.NewRegistry()
	}
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	return opts
}

// pipePair is a follower's pre-established (slave) connection to one
// switch: ctrl is the controller end a promoted stack adopts, sw the
// end registered with the switch.
type pipePair struct {
	ctrl *openflow.Conn
	sw   *openflow.Conn
}

// node is one replica's bookkeeping.
type node struct {
	name  string
	dir   string
	alive bool
	// pipes holds this node's standby switch connections while it is a
	// follower (consumed on promotion).
	pipes map[uint64]pipePair
	// applier receives the leader's WAL stream while a follower.
	applier *Applier
	// shipper is the *leader's* shipper serving this follower.
	shipper *Shipper
}

// Cluster runs Options.Replicas control-plane replicas over one
// simulated network: a single live core.Stack on the lease holder,
// warm shadow WALs plus standby switch connections everywhere else.
type Cluster struct {
	opts  Options
	lease *LeaseStore
	net   *netsim.Network

	mu          sync.Mutex
	nodes       []*node
	leader      *node
	stack       *core.Stack
	state       *durable.State
	leaderAlive bool
	masterConns []*openflow.Conn // leader's switch conns (closed on kill)
	acked       map[string]uint64
	failTL      *flightrec.Timeline
	electing    bool
	lastMTTR    time.Duration
	oldStack    *core.Stack    // fenced, still-running leader after IsolateLeader
	oldState    *durable.State // its durable state (closed on Close)
	closed      bool

	elections      metrics.Counter
	failovers      metrics.Counter
	quorumTimeouts metrics.Counter
	failoverSec    *metrics.Histogram

	stopMonitor chan struct{}
	monitorWG   sync.WaitGroup
}

// New builds (but does not start) a cluster.
func New(opts Options) *Cluster {
	o := opts.withDefaults()
	c := &Cluster{
		opts:        o,
		lease:       NewLeaseStore(o.Clock),
		acked:       make(map[string]uint64),
		stopMonitor: make(chan struct{}),
	}
	reg := o.Metrics
	reg.RegisterCounter("legosdn_replica_elections_total",
		"Leadership changes won via the lease store.", &c.elections)
	reg.RegisterCounter("legosdn_replica_failovers_total",
		"Completed leader failovers (promotion finished).", &c.failovers)
	reg.RegisterCounter("legosdn_replica_quorum_timeouts_total",
		"Journal writes that gave up waiting for follower acks.", &c.quorumTimeouts)
	c.failoverSec = reg.Histogram("legosdn_replica_failover_seconds",
		"Leader-death to dispatch-resumed latency.", nil)
	reg.RegisterGaugeFunc("legosdn_replica_replication_lag_records",
		"Leader journal records not yet acked by the slowest live follower.",
		func() float64 { return float64(c.ReplicationLag()) })
	reg.RegisterGaugeFunc("legosdn_replica_alive",
		"Replicas currently alive (leader included).",
		func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			n := 0
			for _, nd := range c.nodes {
				if nd.alive {
					n++
				}
			}
			return float64(n)
		})
	return c
}

func (c *Cluster) logf(format string, args ...any) {
	if c.opts.Logf != nil {
		c.opts.Logf(format, args...)
	}
}

// Start opens every replica's state directory, elects node0, connects
// the leader as master and every follower as a slave on each switch,
// starts WAL shipping, and launches the failure monitor.
func (c *Cluster) Start(n *netsim.Network) error {
	c.mu.Lock()
	c.net = n
	for i := 0; i < c.opts.Replicas; i++ {
		name := fmt.Sprintf("node%d", i)
		c.nodes = append(c.nodes, &node{
			name:  name,
			dir:   filepath.Join(c.opts.Dir, name),
			alive: true,
			pipes: make(map[uint64]pipePair),
		})
	}
	leader := c.nodes[0]
	c.mu.Unlock()

	if _, ok := c.lease.TryAcquire(leader.name, c.opts.LeaseTTL); !ok {
		return fmt.Errorf("replica: initial lease acquisition failed")
	}
	c.elections.Inc()

	// Followers park a slave connection on every switch now, so a later
	// promotion only flips roles — no re-dialing during failover. The
	// switch-side pump blocks writing its Hello into the synchronous
	// pipe until the promoted controller attaches a reader.
	for _, f := range c.followersOf(leader) {
		for _, sw := range n.Switches() {
			ctrl, swSide := openflow.Pipe()
			if err := sw.AttachSlave(swSide); err != nil {
				return err
			}
			f.pipes[sw.DPID] = pipePair{ctrl: ctrl, sw: swSide}
		}
	}

	st, err := durable.OpenState(leader.dir, 0, c.opts.WAL)
	if err != nil {
		return fmt.Errorf("replica: opening leader state: %w", err)
	}
	if err := c.startReplication(leader, st); err != nil {
		st.Close()
		return err
	}

	stack, err := c.buildStack(st)
	if err != nil {
		return err
	}
	conns := make([]*openflow.Conn, 0, len(n.Switches()))
	for _, sw := range n.Switches() {
		ctrl, swSide := openflow.Pipe()
		if err := sw.Attach(swSide); err != nil {
			return err
		}
		conns = append(conns, ctrl)
	}
	if err := stack.ConnectConns(conns); err != nil {
		return err
	}

	c.mu.Lock()
	c.leader = leader
	c.stack = stack
	c.state = st
	c.masterConns = conns
	c.leaderAlive = true
	c.mu.Unlock()

	c.monitorWG.Add(1)
	go c.monitor()
	c.logf("replica: %s leading %d-replica cluster (commit=%s, ttl=%v)",
		leader.name, c.opts.Replicas, c.opts.CommitMode, c.opts.LeaseTTL)
	return nil
}

// followersOf lists live nodes other than lead.
func (c *Cluster) followersOf(lead *node) []*node {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []*node
	for _, nd := range c.nodes {
		if nd != lead && nd.alive {
			out = append(out, nd)
		}
	}
	return out
}

// startReplication wires a shipper→applier pair from the given leader
// state to every live follower, resetting the ack table.
func (c *Cluster) startReplication(lead *node, st *durable.State) error {
	c.mu.Lock()
	c.acked = make(map[string]uint64)
	c.mu.Unlock()
	for _, f := range c.followersOf(lead) {
		if f.applier != nil { // stale session to a previous leader
			f.applier.Close()
			f.applier = nil
		}
		shipConn, applyConn := net.Pipe()
		a, err := NewApplier(f.dir, applyConn, c.opts.WAL, c.opts.ApplierDelay)
		if err != nil {
			shipConn.Close()
			return fmt.Errorf("replica: starting applier on %s: %w", f.name, err)
		}
		f.applier = a
		name := f.name
		f.shipper = NewShipper(shipConn, st.Journal.WAL(), st.Checkpoints.WAL(),
			func(stream byte, pos uint64) {
				if stream != streamNetlog {
					return
				}
				c.mu.Lock()
				if pos > c.acked[name] {
					c.acked[name] = pos
				}
				c.mu.Unlock()
			})
		f.shipper.Run()
	}
	return nil
}

// buildStack assembles a core.Stack over st. Every incarnation gets a
// private metrics registry (strict duplicate gate) and heartbeat crash
// detection off — the cluster monitor owns liveness here.
func (c *Cluster) buildStack(st *durable.State) (*core.Stack, error) {
	cfg := core.Config{
		Mode:             core.ModeLegoSDN,
		CheckpointEvery:  c.opts.CheckpointEvery,
		EventTimeout:     c.opts.EventTimeout,
		HeartbeatTimeout: -1,
		Durable:          st,
		AutopsyDir:       c.opts.AutopsyDir,
		Logf:             c.opts.Logf,
	}
	if c.opts.CommitMode == CommitQuorum {
		cfg.Journal = &quorumJournal{inner: st.Journal, c: c}
	}
	stack := core.NewStack(cfg)
	for _, app := range c.opts.Apps {
		if err := stack.AddApp(app); err != nil {
			stack.Close()
			return nil, err
		}
	}
	return stack, nil
}

// monitor renews the leader's lease while it lives and runs elections
// when it does not.
func (c *Cluster) monitor() {
	defer c.monitorWG.Done()
	t := time.NewTicker(c.opts.HeartbeatEvery)
	defer t.Stop()
	for {
		select {
		case <-c.stopMonitor:
			return
		case <-t.C:
		}
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return
		}
		if c.leaderAlive && c.leader != nil {
			name := c.leader.name
			c.mu.Unlock()
			c.lease.TryAcquire(name, c.opts.LeaseTTL)
			continue
		}
		tl := c.failTL
		entered := c.electing
		c.mu.Unlock()

		cand := c.bestCandidate()
		if cand == nil {
			continue
		}
		if !entered {
			tl.Enter(flightrec.PhaseElection)
			c.mu.Lock()
			c.electing = true
			c.mu.Unlock()
		}
		// The dead leader's lease must expire before this succeeds; the
		// wait is the detection cost the election phase accounts for.
		if _, ok := c.lease.TryAcquire(cand.name, c.opts.LeaseTTL); !ok {
			continue
		}
		c.elections.Inc()
		c.logf("replica: %s won election (epoch %d), promoting",
			cand.name, c.lease.Current().Epoch)
		if err := c.promote(cand, tl); err != nil {
			c.logf("replica: promotion of %s failed: %v", cand.name, err)
			c.lease.Release(cand.name)
			c.mu.Lock()
			cand.alive = false
			c.mu.Unlock()
		}
		c.mu.Lock()
		c.electing = false
		c.mu.Unlock()
	}
}

// bestCandidate picks the live follower with the highest received
// NetLog position (ties break toward the lowest name) — the replica
// whose shadow journal is most complete.
func (c *Cluster) bestCandidate() *node {
	c.mu.Lock()
	defer c.mu.Unlock()
	var best *node
	var bestPos uint64
	for _, nd := range c.nodes {
		if !nd.alive || nd == c.leader || nd.applier == nil {
			continue
		}
		pos := nd.applier.ReceivedPos(streamNetlog)
		if best == nil || pos > bestPos {
			best, bestPos = nd, pos
		}
	}
	return best
}

// promote turns cand into the leader: drain its replication backlog,
// open its shadow state as the live durable state, restart shipping to
// the remaining followers, flip its switch connections to master, and
// run the stack's durable recovery (presumed-abort inverse replay)
// before resuming dispatch.
func (c *Cluster) promote(cand *node, tl *flightrec.Timeline) error {
	tl.Enter(flightrec.PhaseCatchUp)
	var backlog int
	if cand.applier != nil {
		backlog = cand.applier.Backlog()
		if err := cand.applier.Drain(10 * time.Second); err != nil {
			c.logf("replica: catch-up on %s: %v", cand.name, err)
		}
		cand.applier.Close()
		cand.applier = nil
	}

	tl.Enter(flightrec.PhaseRestore)
	st, err := durable.OpenState(cand.dir, 0, c.opts.WAL)
	if err != nil {
		return fmt.Errorf("replica: opening promoted state: %w", err)
	}
	orphans := len(st.Journal.Orphans())
	// Shipping must restart before the stack connects: under quorum
	// commit the very first post-failover transaction blocks on
	// follower acks. A fresh WAL handle restarts at generation 0, so
	// the shippers open with a reset and re-ship the whole (compacted)
	// log; the appliers wipe and rebuild — idempotent by design.
	if err := c.startReplication(cand, st); err != nil {
		st.Close()
		return err
	}
	c.mu.Lock()
	c.leader = cand // quorum waits must not count cand as a follower
	c.mu.Unlock()
	stack, err := c.buildStack(st)
	if err != nil {
		st.Close()
		return err
	}

	tl.Enter(flightrec.PhaseRollback)
	// Master role transfer: promote this node's standby connection on
	// every switch (demoting the old master, which fences a partitioned
	// ex-leader with EPERM), then let the stack adopt them. ConnectConns
	// handshakes and replays orphaned-transaction inverses — those sends
	// need the master role, hence the ordering.
	conns := make([]*openflow.Conn, 0, len(cand.pipes))
	for _, sw := range c.net.Switches() {
		pp, ok := cand.pipes[sw.DPID]
		if !ok {
			continue
		}
		if err := sw.PromoteSlave(pp.sw); err != nil {
			stack.Close()
			return fmt.Errorf("replica: promoting slave on dpid %d: %w", sw.DPID, err)
		}
		conns = append(conns, pp.ctrl)
	}
	cand.pipes = make(map[uint64]pipePair)
	if err := stack.ConnectConns(conns); err != nil {
		stack.Close()
		return fmt.Errorf("replica: adopting switch connections: %w", err)
	}

	tl.Enter(flightrec.PhaseResume)
	c.mu.Lock()
	c.stack = stack
	c.state = st
	c.masterConns = conns
	c.leaderAlive = true
	c.mu.Unlock()
	c.failovers.Inc()
	tl.Finish()
	mttr := tl.Total()
	c.failoverSec.Observe(mttr.Seconds())
	c.mu.Lock()
	c.lastMTTR = mttr
	c.mu.Unlock()

	stack.Autopsies.Add(&flightrec.Autopsy{
		App:     "controller",
		Trigger: "failover",
		Class:   "leader-death",
		Culprit: "leadership lease expired",
		Outcome: "Recovered",
		Notes: []string{
			fmt.Sprintf("%s promoted (epoch %d)", cand.name, c.lease.Current().Epoch),
			fmt.Sprintf("catch-up drained %d queued frame(s)", backlog),
			fmt.Sprintf("journal held %d orphaned txn(s)", orphans),
		},
		Timeline:        tl.Phases(),
		RecoverySeconds: mttr.Seconds(),
	})
	c.logf("replica: %s serving after %v (backlog %d, orphans %d)",
		cand.name, mttr, backlog, orphans)
	return nil
}

// KillLeader crash-stops the current leader: its switch connections
// drop, replication to followers stops, and its WALs close without
// resolving open transactions — the SIGKILL the chaos scenarios model.
// The monitor detects the silence and elects a successor.
func (c *Cluster) KillLeader() error {
	c.mu.Lock()
	if !c.leaderAlive || c.leader == nil {
		c.mu.Unlock()
		return fmt.Errorf("replica: no live leader to kill")
	}
	dead := c.leader
	stack, st := c.stack, c.state
	conns := c.masterConns
	followers := c.followersSnapshotLocked(dead)
	c.mu.Unlock()

	// Tear the leader down while leaderAlive is still true: the monitor
	// cannot start a promotion (which rewires follower sessions) until
	// the flag flips below, so these node mutations are race-free.
	for _, f := range followers {
		if f.shipper != nil {
			f.shipper.Stop()
			f.shipper.Close()
			f.shipper = nil
		}
	}
	for _, conn := range conns {
		conn.Close()
	}
	if stack != nil {
		stack.Close()
	}
	if st != nil {
		st.Close() // closing the WAL writes nothing: open txns stay orphaned
	}

	c.mu.Lock()
	dead.alive = false
	c.leaderAlive = false
	c.stack, c.state, c.masterConns = nil, nil, nil
	c.failTL = flightrec.NewTimeline(nil) // detect phase starts now
	c.mu.Unlock()
	c.logf("replica: %s killed", dead.name)
	return nil
}

// IsolateLeader partitions the current leader instead of killing it:
// replication stops and the cluster stops renewing its lease, but its
// stack keeps running with its switch connections — until the elected
// successor's PromoteSlave demotes it to slave on every switch, after
// which its state-changing messages bounce with EPERM (fencing). The
// fenced stack is retained for inspection via OldLeaderStack.
func (c *Cluster) IsolateLeader() error {
	c.mu.Lock()
	if !c.leaderAlive || c.leader == nil {
		c.mu.Unlock()
		return fmt.Errorf("replica: no live leader to isolate")
	}
	old := c.leader
	followers := c.followersSnapshotLocked(old)
	c.mu.Unlock()

	// Cut replication first (same race-free window as KillLeader): the
	// monitor cannot promote until leaderAlive flips below.
	for _, f := range followers {
		if f.shipper != nil {
			f.shipper.Stop()
			f.shipper.Close()
			f.shipper = nil
		}
	}

	c.mu.Lock()
	old.alive = false
	c.leaderAlive = false
	c.failTL = flightrec.NewTimeline(nil)
	c.oldStack, c.oldState = c.stack, c.state
	c.stack, c.state, c.masterConns = nil, nil, nil
	c.mu.Unlock()
	c.logf("replica: %s partitioned away", old.name)
	return nil
}

// followersSnapshotLocked is followersOf for callers already holding
// c.mu (the dead/isolated node is excluded via its alive flag).
func (c *Cluster) followersSnapshotLocked(lead *node) []*node {
	var out []*node
	for _, nd := range c.nodes {
		if nd != lead {
			out = append(out, nd)
		}
	}
	return out
}

// WaitLeader blocks until a leader other than old serves, returning
// its stack.
func (c *Cluster) WaitLeader(old string, timeout time.Duration) (*core.Stack, error) {
	deadline := time.Now().Add(timeout)
	for {
		c.mu.Lock()
		if c.leaderAlive && c.leader != nil && c.leader.name != old && c.stack != nil {
			s := c.stack
			c.mu.Unlock()
			return s, nil
		}
		c.mu.Unlock()
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("replica: no successor to %s within %v", old, timeout)
		}
		time.Sleep(time.Millisecond)
	}
}

// Stack returns the current leader's stack (nil during failover).
func (c *Cluster) Stack() *core.Stack {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stack
}

// State returns the current leader's durable state (nil during
// failover).
func (c *Cluster) State() *durable.State {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.state
}

// OldLeaderStack returns the fenced ex-leader after IsolateLeader.
func (c *Cluster) OldLeaderStack() *core.Stack {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.oldStack
}

// LeaderName returns the current lease holder's node name.
func (c *Cluster) LeaderName() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.leader == nil {
		return ""
	}
	return c.leader.name
}

// Lease exposes the election substrate (tests, demos).
func (c *Cluster) Lease() *LeaseStore { return c.lease }

// Elections counts leadership acquisitions (initial election included).
func (c *Cluster) Elections() uint64 { return c.elections.Load() }

// Failovers counts completed promotions.
func (c *Cluster) Failovers() uint64 { return c.failovers.Load() }

// LastMTTR reports the most recent failover's detect-to-resume time.
func (c *Cluster) LastMTTR() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastMTTR
}

// QuorumTimeouts counts journal writes that degraded to async after the
// quorum wait expired.
func (c *Cluster) QuorumTimeouts() uint64 { return c.quorumTimeouts.Load() }

// ReplicationLag reports leader journal records not yet acked by the
// slowest live follower (0 when no leader or no followers).
func (c *Cluster) ReplicationLag() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.state == nil || c.leader == nil {
		return 0
	}
	end := c.state.Journal.WAL().EndPos()
	lag := uint64(0)
	for _, nd := range c.nodes {
		if !nd.alive || nd == c.leader {
			continue
		}
		acked := c.acked[nd.name]
		if end > acked && end-acked > lag {
			lag = end - acked
		}
	}
	return lag
}

// waitQuorum blocks until a majority of replicas hold the journal
// prefix through pos (the leader's own WAL write already counts as one
// vote), or QuorumTimeout passes.
func (c *Cluster) waitQuorum(pos uint64) error {
	need := c.opts.Replicas/2 + 1 - 1 // follower acks beyond the leader
	if need <= 0 {
		return nil
	}
	deadline := time.Now().Add(c.opts.QuorumTimeout)
	for {
		c.mu.Lock()
		got := 0
		for _, nd := range c.nodes {
			if nd.alive && nd != c.leader && c.acked[nd.name] >= pos {
				got++
			}
		}
		c.mu.Unlock()
		if got >= need {
			return nil
		}
		if time.Now().After(deadline) {
			c.quorumTimeouts.Inc()
			return fmt.Errorf("replica: quorum wait for journal pos %d timed out (%d/%d follower acks)",
				pos, got, need)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// quorumJournal wraps the durable NetLog journal so every write blocks
// until a majority of replicas hold it. Errors surface to NetLog's
// journalAppend, which absorbs them into the JournalErrors counter —
// a quorum loss degrades durability, never availability.
type quorumJournal struct {
	inner *durable.NetLogJournal
	c     *Cluster
}

func (q *quorumJournal) after(err error) error {
	if err != nil {
		return err
	}
	return q.c.waitQuorum(q.inner.WAL().EndPos())
}

func (q *quorumJournal) TxnBegin(id uint64) error { return q.after(q.inner.TxnBegin(id)) }
func (q *quorumJournal) TxnOp(id uint64, op netlog.JournalOp) error {
	return q.after(q.inner.TxnOp(id, op))
}
func (q *quorumJournal) TxnCommit(id uint64) error { return q.after(q.inner.TxnCommit(id)) }
func (q *quorumJournal) TxnAbort(id uint64) error  { return q.after(q.inner.TxnAbort(id)) }

// Close stops the monitor, the replication sessions and whatever stack
// is serving (the fenced ex-leader included).
func (c *Cluster) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	stack, st := c.stack, c.state
	oldStack, oldState := c.oldStack, c.oldState
	c.stack, c.state, c.oldStack, c.oldState = nil, nil, nil, nil
	nodes := append([]*node(nil), c.nodes...)
	c.mu.Unlock()

	close(c.stopMonitor)
	c.monitorWG.Wait()
	for _, nd := range nodes {
		if nd.shipper != nil {
			nd.shipper.Stop()
			nd.shipper.Close()
			nd.shipper = nil
		}
		if nd.applier != nil {
			nd.applier.Close()
			nd.applier = nil
		}
	}
	if stack != nil {
		stack.Close()
	}
	if st != nil {
		st.Close()
	}
	if oldStack != nil {
		oldStack.Close()
	}
	if oldState != nil {
		oldState.Close()
	}
}
