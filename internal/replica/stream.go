package replica

import (
	"encoding/binary"
	"fmt"
	"io"
)

// The replication stream is a full-duplex framed protocol between one
// shipper (leader side) and one applier (follower side). Two logical
// streams are multiplexed over the connection — the NetLog journal and
// the checkpoint log — each carrying raw durable.WAL records tagged
// with monotonic positions, plus reset frames announcing a new WAL
// generation (compaction or a fresh leader). The follower acks every
// frame on receipt; the leader's quorum-commit mode waits on those
// acked positions.
//
// Frame layout:
//
//	[u8 kind] [u8 stream] [u8 rectype] [u64 pos] [u64 gen] [u32 len] [payload]
//
// kind=reset carries no payload; pos is the position just before the
// first record of the new generation (the follower wipes its shadow
// log and resumes applying at pos+1). kind=ack flows follower→leader
// with pos = the highest position received on that stream.

// Frame kinds.
const (
	frameReset  byte = 1
	frameRecord byte = 2
	frameAck    byte = 3
)

// Logical streams.
const (
	streamNetlog      byte = 1
	streamCheckpoints byte = 2
)

// streamName labels a stream id for diagnostics.
func streamName(id byte) string {
	switch id {
	case streamNetlog:
		return "netlog"
	case streamCheckpoints:
		return "checkpoints"
	default:
		return fmt.Sprintf("stream(%d)", id)
	}
}

// frame is one replication protocol message.
type frame struct {
	Kind    byte
	Stream  byte
	RecType byte
	Pos     uint64
	Gen     uint64
	Payload []byte
}

const frameHeaderSize = 1 + 1 + 1 + 8 + 8 + 4

// maxFramePayload bounds a frame body; WAL records are checkpoint
// images and journal entries, well under this.
const maxFramePayload = 64 << 20

// writeFrame encodes f as one Write call (callers serialize writes per
// connection themselves — each side has a single writer goroutine).
func writeFrame(w io.Writer, f frame) error {
	buf := make([]byte, frameHeaderSize+len(f.Payload))
	buf[0] = f.Kind
	buf[1] = f.Stream
	buf[2] = f.RecType
	binary.BigEndian.PutUint64(buf[3:11], f.Pos)
	binary.BigEndian.PutUint64(buf[11:19], f.Gen)
	binary.BigEndian.PutUint32(buf[19:23], uint32(len(f.Payload)))
	copy(buf[frameHeaderSize:], f.Payload)
	_, err := w.Write(buf)
	return err
}

// readFrame decodes one frame, blocking until it is fully available.
func readFrame(r io.Reader) (frame, error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return frame{}, err
	}
	f := frame{
		Kind:    hdr[0],
		Stream:  hdr[1],
		RecType: hdr[2],
		Pos:     binary.BigEndian.Uint64(hdr[3:11]),
		Gen:     binary.BigEndian.Uint64(hdr[11:19]),
	}
	n := binary.BigEndian.Uint32(hdr[19:23])
	if n > maxFramePayload {
		return frame{}, fmt.Errorf("replica: frame payload %d exceeds limit", n)
	}
	if n > 0 {
		f.Payload = make([]byte, n)
		if _, err := io.ReadFull(r, f.Payload); err != nil {
			return frame{}, err
		}
	}
	return f, nil
}
