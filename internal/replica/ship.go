package replica

import (
	"errors"
	"net"
	"sync"
	"time"

	"legosdn/internal/durable"
	"legosdn/internal/metrics"
)

// Shipper tails the leader's two WALs and streams their records to one
// follower, using the read-only tailing API (TailState /
// OpenSegmentReader) so it never races compaction: a generation change
// is observed atomically with the new segment list and turns into a
// reset frame, after which the follower re-applies from the
// snapshot-headed log. One Shipper per follower; records are shipped in
// log order with contiguous positions, so follower-side dedup is a
// single comparison.
type Shipper struct {
	conn    net.Conn
	streams []*shipStream
	onAck   func(stream byte, pos uint64)

	shipped metrics.Counter
	resets  metrics.Counter

	stop chan struct{}
	wg   sync.WaitGroup
}

// shipStream is the shipper's cursor into one WAL.
type shipStream struct {
	id     byte
	wal    *durable.WAL
	inited bool
	gen    uint64
	pos    uint64 // last shipped position
	segs   []uint64
	reader *durable.SegmentReader
}

// NewShipper builds a shipper for one follower connection. onAck (may
// be nil) observes follower acknowledgments; the cluster uses it to
// drive quorum waits. Call Run to start.
func NewShipper(conn net.Conn, netlogWAL, checkpointWAL *durable.WAL, onAck func(stream byte, pos uint64)) *Shipper {
	return &Shipper{
		conn: conn,
		streams: []*shipStream{
			{id: streamNetlog, wal: netlogWAL},
			{id: streamCheckpoints, wal: checkpointWAL},
		},
		onAck: onAck,
		stop:  make(chan struct{}),
	}
}

// Shipped reports records sent; Resets the generation resyncs sent.
func (s *Shipper) Shipped() uint64 { return s.shipped.Load() }
func (s *Shipper) Resets() uint64  { return s.resets.Load() }

// Run starts the ack reader and the shipping loop. It returns
// immediately; Stop tears both down.
func (s *Shipper) Run() {
	s.wg.Add(2)
	go s.ackLoop()
	go s.shipLoop()
}

// Stop closes the connection and waits for the loops to exit.
func (s *Shipper) Stop() {
	select {
	case <-s.stop:
	default:
		close(s.stop)
	}
	s.conn.Close()
	s.wg.Wait()
}

func (s *Shipper) ackLoop() {
	defer s.wg.Done()
	for {
		f, err := readFrame(s.conn)
		if err != nil {
			return
		}
		if f.Kind == frameAck && s.onAck != nil {
			s.onAck(f.Stream, f.Pos)
		}
	}
}

func (s *Shipper) shipLoop() {
	defer s.wg.Done()
	for {
		progress := false
		for _, st := range s.streams {
			p, err := s.step(st)
			if err != nil {
				return // conn closed: follower gone or Stop
			}
			progress = progress || p
		}
		if !progress {
			select {
			case <-s.stop:
				return
			case <-time.After(500 * time.Microsecond):
			}
		}
	}
}

// step advances one stream: resync on generation change, open the next
// segment reader when needed, and ship every record currently
// available. Returns whether anything was sent.
func (s *Shipper) step(st *shipStream) (progress bool, err error) {
	ts := st.wal.TailState()
	if !st.inited || ts.Gen != st.gen {
		// New generation (first contact or a compaction): tell the
		// follower to wipe its shadow log and restart at StartPos.
		if st.reader != nil {
			st.reader.Close()
			st.reader = nil
		}
		st.inited, st.gen, st.pos, st.segs = true, ts.Gen, ts.StartPos, ts.Segments
		if err := writeFrame(s.conn, frame{Kind: frameReset, Stream: st.id, Pos: st.pos, Gen: st.gen}); err != nil {
			return false, err
		}
		s.resets.Inc()
		progress = true
	}
	if st.reader == nil {
		if len(st.segs) == 0 {
			return progress, nil
		}
		r, err := st.wal.OpenSegmentReader(st.segs[0])
		if err != nil {
			// Compacted between TailState and open: the next step sees
			// the bumped generation and resyncs.
			if errors.Is(err, durable.ErrSegmentGone) {
				return progress, nil
			}
			return progress, nil
		}
		st.reader = r
	}
	for {
		rec, rerr := st.reader.Next()
		if rerr != nil { // io.EOF: no complete record at this offset yet
			if advanced, err := s.advanceSegment(st); err != nil {
				return progress, err
			} else if advanced {
				continue
			}
			return progress, nil
		}
		st.pos++
		if err := writeFrame(s.conn, frame{
			Kind: frameRecord, Stream: st.id, RecType: rec.Type,
			Pos: st.pos, Gen: st.gen, Payload: rec.Payload,
		}); err != nil {
			return progress, err
		}
		s.shipped.Inc()
		progress = true
	}
}

// advanceSegment moves the cursor past a drained segment when a later
// one exists. A drained *final* segment is just a live tail — stay on
// it. Returns whether the cursor moved.
func (s *Shipper) advanceSegment(st *shipStream) (bool, error) {
	ts := st.wal.TailState()
	if ts.Gen != st.gen {
		return false, nil // resync on the next step
	}
	st.segs = ts.Segments
	cur := st.reader.Seq()
	for i, seq := range st.segs {
		if seq == cur {
			if i+1 >= len(st.segs) {
				return false, nil // final segment: keep tailing
			}
			next, err := st.wal.OpenSegmentReader(st.segs[i+1])
			if err != nil {
				return false, nil
			}
			st.reader.Close()
			st.reader = next
			return true, nil
		}
	}
	// Current segment vanished without a generation change observed yet;
	// the next step resyncs.
	return false, nil
}

// Close releases reader handles (after Stop).
func (s *Shipper) Close() {
	for _, st := range s.streams {
		if st.reader != nil {
			st.reader.Close()
			st.reader = nil
		}
	}
}
