package replica

import (
	"bytes"
	"fmt"
	"net"
	"path/filepath"
	"testing"
	"time"

	"legosdn/internal/durable"
)

// walRecords drains a WAL's full live contents via the tail API.
func walRecords(t *testing.T, w *durable.WAL) []durable.Record {
	t.Helper()
	var out []durable.Record
	for _, seq := range w.TailState().Segments {
		r, err := w.OpenSegmentReader(seq)
		if err != nil {
			t.Fatalf("open segment %d: %v", seq, err)
		}
		for {
			rec, err := r.Next()
			if err != nil {
				break
			}
			// Next reuses its read buffer; retain a copy.
			out = append(out, durable.Record{
				Type:    rec.Type,
				Payload: append([]byte(nil), rec.Payload...),
			})
		}
		r.Close()
	}
	return out
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestFollowerJoinsMidStreamAfterCompaction starts a follower against a
// leader WAL that has already been compacted — the follower must
// bootstrap from the snapshot-headed log (reset frame), then keep pace
// with live appends, ending byte-identical to the leader's live log.
func TestFollowerJoinsMidStreamAfterCompaction(t *testing.T) {
	dir := t.TempDir()
	opts := durable.Options{NoSync: true}
	lead, err := durable.Open(filepath.Join(dir, "leader"), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer lead.Close()
	ckpt, err := durable.Open(filepath.Join(dir, "leader-ckpt"), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer ckpt.Close()

	// History the follower never sees raw: five records folded into a
	// snapshot by compaction.
	for i := 0; i < 5; i++ {
		if err := lead.Append(1, []byte(fmt.Sprintf("old-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := lead.Compact([]byte("snapshot-at-5")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := lead.Append(1, []byte(fmt.Sprintf("new-%d", i))); err != nil {
			t.Fatal(err)
		}
	}

	shipConn, applyConn := net.Pipe()
	app, err := NewApplier(filepath.Join(dir, "follower"), applyConn, opts, 0)
	if err != nil {
		t.Fatal(err)
	}
	sh := NewShipper(shipConn, lead, ckpt, nil)
	sh.Run()

	waitFor(t, "mid-stream catch-up", func() bool {
		return app.AppliedPos(streamNetlog) >= lead.EndPos()
	})

	// Live appends after the join must flow too.
	for i := 3; i < 6; i++ {
		if err := lead.Append(1, []byte(fmt.Sprintf("new-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "live tailing", func() bool {
		return app.AppliedPos(streamNetlog) >= lead.EndPos()
	})
	if app.Resets() < 1 {
		t.Fatalf("follower saw %d resets, want >= 1 (snapshot bootstrap)", app.Resets())
	}

	sh.Stop()
	sh.Close()
	if err := app.Close(); err != nil {
		t.Fatal(err)
	}

	shadow, err := durable.Open(filepath.Join(dir, "follower", "netlog"), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer shadow.Close()
	got, want := walRecords(t, shadow), walRecords(t, lead)
	if len(got) != len(want) {
		t.Fatalf("follower has %d records, leader %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Type != want[i].Type || !bytes.Equal(got[i].Payload, want[i].Payload) {
			t.Fatalf("record %d diverges: follower %d/%q, leader %d/%q",
				i, got[i].Type, got[i].Payload, want[i].Type, want[i].Payload)
		}
	}
	if got[0].Type != durable.RecSnapshot || string(got[0].Payload) != "snapshot-at-5" {
		t.Fatalf("follower log does not start with the snapshot: %d/%q", got[0].Type, got[0].Payload)
	}
}

// TestDuplicateDeliveryIdempotent feeds an applier hand-built frames
// with a duplicated position: the duplicate must be counted and
// skipped, leaving exactly one copy in the shadow log.
func TestDuplicateDeliveryIdempotent(t *testing.T) {
	dir := t.TempDir()
	opts := durable.Options{NoSync: true}
	leaderSide, applyConn := net.Pipe()
	app, err := NewApplier(dir, applyConn, opts, 0)
	if err != nil {
		t.Fatal(err)
	}

	// The applier acks every frame on the same synchronous pipe, so the
	// fake leader must drain them.
	go func() {
		for {
			if _, err := readFrame(leaderSide); err != nil {
				return
			}
		}
	}()

	send := func(f frame) {
		t.Helper()
		if err := writeFrame(leaderSide, f); err != nil {
			t.Fatalf("writeFrame: %v", err)
		}
	}
	send(frame{Kind: frameReset, Stream: streamNetlog, Pos: 0, Gen: 0})
	send(frame{Kind: frameRecord, Stream: streamNetlog, RecType: 1, Pos: 1, Gen: 0, Payload: []byte("x")})
	// A shipper retrying after a partial failover re-sends the same
	// position: must be dropped, not re-applied.
	send(frame{Kind: frameRecord, Stream: streamNetlog, RecType: 1, Pos: 1, Gen: 0, Payload: []byte("x")})
	send(frame{Kind: frameRecord, Stream: streamNetlog, RecType: 1, Pos: 2, Gen: 0, Payload: []byte("y")})

	waitFor(t, "frames applied", func() bool {
		return app.AppliedPos(streamNetlog) >= 2 && app.Backlog() == 0
	})
	if got := app.Dups(); got != 1 {
		t.Fatalf("dups = %d, want 1", got)
	}
	leaderSide.Close()
	if err := app.Close(); err != nil {
		t.Fatal(err)
	}

	shadow, err := durable.Open(filepath.Join(dir, "netlog"), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer shadow.Close()
	recs := walRecords(t, shadow)
	if len(recs) != 2 || string(recs[0].Payload) != "x" || string(recs[1].Payload) != "y" {
		t.Fatalf("shadow log = %d records %q, want [x y]", len(recs), recs)
	}
}
