package replica

import (
	"testing"
	"time"
)

// TestLeaseStoreBasics covers grant, renewal, mutual exclusion, expiry
// takeover and planned release.
func TestLeaseStoreBasics(t *testing.T) {
	now := time.Unix(1000, 0)
	s := NewLeaseStore(func() time.Time { return now })
	ttl := 100 * time.Millisecond

	l, ok := s.TryAcquire("a", ttl)
	if !ok || l.Holder != "a" || l.Epoch != 1 {
		t.Fatalf("initial acquire = %+v, %v", l, ok)
	}
	if _, ok := s.TryAcquire("b", ttl); ok {
		t.Fatal("b acquired an unexpired lease held by a")
	}
	now = now.Add(50 * time.Millisecond)
	if l, ok := s.TryAcquire("a", ttl); !ok || l.Epoch != 1 {
		t.Fatalf("renewal = %+v, %v (epoch must not bump)", l, ok)
	}
	now = now.Add(ttl + time.Millisecond)
	l, ok = s.TryAcquire("b", ttl)
	if !ok || l.Holder != "b" || l.Epoch != 2 {
		t.Fatalf("takeover after expiry = %+v, %v", l, ok)
	}
	s.Release("b")
	if l, ok := s.TryAcquire("a", ttl); !ok || l.Epoch != 3 {
		t.Fatalf("acquire after release = %+v, %v", l, ok)
	}
	if got := s.Elections(); got != 3 {
		t.Fatalf("elections = %d, want 3", got)
	}
}

// TestElectionFlappingFakeClock drives two electors through repeated
// lease expiries on a stepped clock: leadership must ping-pong with an
// epoch bump and exactly one changed-transition pair per flap, and
// never be held by both nodes at once.
func TestElectionFlappingFakeClock(t *testing.T) {
	now := time.Unix(2000, 0)
	store := NewLeaseStore(func() time.Time { return now })
	ttl := 100 * time.Millisecond
	a := &Elector{Store: store, Node: "a", TTL: ttl}
	b := &Elector{Store: store, Node: "b", TTL: ttl}

	if leader, epoch, changed := a.Step(); !leader || epoch != 1 || !changed {
		t.Fatalf("a first step = %v, %d, %v", leader, epoch, changed)
	}
	if leader, _, changed := b.Step(); leader || changed {
		t.Fatal("b stole an unexpired lease")
	}

	holder := a
	other := b
	wantEpoch := uint64(1)
	for flap := 0; flap < 6; flap++ {
		// Holder renews within the TTL: no transition, no epoch bump.
		now = now.Add(ttl / 2)
		if leader, epoch, changed := holder.Step(); !leader || changed || epoch != wantEpoch {
			t.Fatalf("flap %d: renewal = %v, %d, %v (want leading, epoch %d, unchanged)",
				flap, leader, epoch, changed, wantEpoch)
		}
		if leader, _, _ := other.Step(); leader {
			t.Fatalf("flap %d: both nodes leading", flap)
		}
		// Holder goes silent past the TTL: the other node takes over.
		now = now.Add(ttl + time.Millisecond)
		wantEpoch++
		if leader, epoch, changed := other.Step(); !leader || !changed || epoch != wantEpoch {
			t.Fatalf("flap %d: takeover = %v, %d, %v (want leading, epoch %d, changed)",
				flap, leader, epoch, changed, wantEpoch)
		}
		// The deposed node observes the loss as its own transition.
		if leader, _, changed := holder.Step(); leader || !changed {
			t.Fatalf("flap %d: deposed node did not observe loss", flap)
		}
		holder, other = other, holder
	}
	// Initial election + one per flap.
	if got := store.Elections(); got != 7 {
		t.Fatalf("elections = %d, want 7", got)
	}
}
