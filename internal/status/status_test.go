package status

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"legosdn/internal/apps"
	"legosdn/internal/controller"
	"legosdn/internal/core"
	"legosdn/internal/netsim"
	"legosdn/internal/openflow"
)

// poisonApp crashes on TCP dport 6666.
type poisonApp struct{ *apps.LearningSwitch }

func (a *poisonApp) HandleEvent(ctx controller.Context, ev controller.Event) error {
	if pin, ok := ev.Message.(*openflow.PacketIn); ok {
		if f, err := netsim.ParseFrame(pin.Data); err == nil && f.TpDst == 6666 {
			panic("poison")
		}
	}
	return a.LearningSwitch.HandleEvent(ctx, ev)
}

func setup(t *testing.T) (*core.Stack, *netsim.Network, *httptest.Server) {
	t.Helper()
	stack := core.NewStack(core.Config{Mode: core.ModeLegoSDN})
	t.Cleanup(stack.Close)
	stack.AddApp(func() controller.App {
		return &poisonApp{LearningSwitch: apps.NewLearningSwitch()}
	})
	n := netsim.Single(2, nil)
	if err := stack.ConnectNetwork(n); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(Handler(stack, n))
	t.Cleanup(srv.Close)
	return stack, n, srv
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(body)
}

func TestStatusSummary(t *testing.T) {
	stack, n, srv := setup(t)
	h1, h2 := n.Host("h1"), n.Host("h2")
	n.SendFromHost("h1", netsim.TCPFrame(h1, h2, 1, 80, nil))
	n.SendFromHost("h1", netsim.TCPFrame(h1, h2, 2, 6666, nil)) // crash + recovery
	deadline := time.Now().Add(3 * time.Second)
	for stack.CrashPad.Recoveries.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("recovery never happened")
		}
		time.Sleep(time.Millisecond)
	}

	code, body := get(t, srv.URL+"/status")
	if code != 200 {
		t.Fatalf("status code %d", code)
	}
	var s Summary
	if err := json.Unmarshal([]byte(body), &s); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if s.Mode != "legosdn" || !s.ControllerUp {
		t.Fatalf("summary %+v", s)
	}
	if len(s.Switches) != 1 || s.Switches[0] != 1 {
		t.Fatalf("switches %v", s.Switches)
	}
	var found bool
	for _, a := range s.Apps {
		if a.Name == "learning-switch" {
			found = true
			if a.Disabled || a.StubUp == nil || !*a.StubUp {
				t.Fatalf("app row %+v", a)
			}
		}
	}
	if !found {
		t.Fatalf("app missing from summary: %+v", s.Apps)
	}
	if s.CrashPad == nil || s.CrashPad.Recoveries < 1 || s.CrashPad.Tickets < 1 {
		t.Fatalf("crashpad view %+v", s.CrashPad)
	}
	if s.NetLog == nil || s.NetLog.Rollbacks < 1 {
		t.Fatalf("netlog view %+v", s.NetLog)
	}
}

func TestTicketsEndpoint(t *testing.T) {
	stack, n, srv := setup(t)
	_, body := get(t, srv.URL+"/tickets")
	if !strings.Contains(body, "no tickets") {
		t.Fatalf("empty tickets = %q", body)
	}
	h1, h2 := n.Host("h1"), n.Host("h2")
	n.SendFromHost("h1", netsim.TCPFrame(h1, h2, 2, 6666, nil))
	deadline := time.Now().Add(3 * time.Second)
	for stack.CrashPad.Recoveries.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("recovery never happened")
		}
		time.Sleep(time.Millisecond)
	}
	_, body = get(t, srv.URL+"/tickets")
	if !strings.Contains(body, "Problem Ticket #1") || !strings.Contains(body, "poison") {
		t.Fatalf("tickets body = %q", body)
	}
}

func TestFlowsEndpoint(t *testing.T) {
	_, n, srv := setup(t)
	n.Switch(1).Table().Apply(&openflow.FlowMod{
		Match: openflow.MatchAll(), Command: openflow.FlowModAdd, Priority: 9,
		BufferID: openflow.BufferIDNone, OutPort: openflow.PortNone,
		Actions: []openflow.Action{&openflow.ActionOutput{Port: 100}},
	})
	code, body := get(t, srv.URL+"/flows?dpid=1")
	if code != 200 {
		t.Fatalf("code %d", code)
	}
	var flows []FlowView
	if err := json.Unmarshal([]byte(body), &flows); err != nil {
		t.Fatal(err)
	}
	if len(flows) != 1 || flows[0].Priority != 9 || flows[0].Actions != 1 {
		t.Fatalf("flows %+v", flows)
	}
	// Error paths.
	if code, _ := get(t, srv.URL+"/flows"); code != http.StatusBadRequest {
		t.Fatalf("missing dpid -> %d", code)
	}
	if code, _ := get(t, srv.URL+"/flows?dpid=99"); code != http.StatusNotFound {
		t.Fatalf("unknown dpid -> %d", code)
	}
}
