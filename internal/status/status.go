// Package status exposes a running LegoSDN stack to operators over
// HTTP: a JSON summary of controller, app and recovery state, rendered
// problem tickets, and per-switch flow tables. cmd/legosdn serves it
// with -status; tests drive it through httptest.
package status

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"legosdn/internal/core"
	"legosdn/internal/netsim"
)

// Summary is the /status JSON document.
type Summary struct {
	Mode            string        `json:"mode"`
	ControllerUp    bool          `json:"controller_up"`
	Switches        []uint64      `json:"switches"`
	Apps            []AppStatus   `json:"apps"`
	EventsProcessed uint64        `json:"events_processed"`
	CrashPad        *CrashPadView `json:"crashpad,omitempty"`
	NetLog          *NetLogView   `json:"netlog,omitempty"`
}

// AppStatus is one app's row in the summary.
type AppStatus struct {
	Name     string `json:"name"`
	Disabled bool   `json:"disabled"`
	Events   uint64 `json:"events"`
	Failures uint64 `json:"failures"`
	StubUp   *bool  `json:"stub_up,omitempty"`
}

// CrashPadView summarizes recovery activity.
type CrashPadView struct {
	Crashes        uint64 `json:"crashes"`
	Byzantine      uint64 `json:"byzantine"`
	Recoveries     uint64 `json:"recoveries"`
	DeepRecoveries uint64 `json:"deep_recoveries"`
	Ignored        uint64 `json:"ignored_events"`
	Transformed    uint64 `json:"transformed_events"`
	Tickets        int    `json:"tickets"`
}

// NetLogView summarizes transaction activity.
type NetLogView struct {
	Committed      uint64 `json:"committed_txns"`
	Rollbacks      uint64 `json:"rollbacks"`
	RolledBackMods uint64 `json:"rolled_back_mods"`
	CounterCache   int    `json:"counter_cache_entries"`
}

// FlowView is one rule in the /flows document.
type FlowView struct {
	Priority    uint16 `json:"priority"`
	Match       string `json:"match"`
	Actions     int    `json:"actions"`
	PacketCount uint64 `json:"packets"`
	ByteCount   uint64 `json:"bytes"`
	IdleTimeout uint16 `json:"idle_timeout"`
	HardTimeout uint16 `json:"hard_timeout"`
}

// Handler serves the status API for a stack and its simulated network
// (net may be nil when the switches are remote).
//
//	GET /status        -> Summary JSON
//	GET /tickets       -> problem tickets, rendered text
//	GET /flows?dpid=N  -> FlowView JSON for one switch
func Handler(st *core.Stack, net *netsim.Network) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, buildSummary(st))
	})
	mux.HandleFunc("/tickets", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if st.CrashPad == nil {
			fmt.Fprintln(w, "crash-pad not enabled in this mode")
			return
		}
		tickets := st.CrashPad.Tickets()
		if len(tickets) == 0 {
			fmt.Fprintln(w, "no tickets")
			return
		}
		for _, tk := range tickets {
			fmt.Fprintln(w, tk.Render())
		}
	})
	mux.HandleFunc("/flows", func(w http.ResponseWriter, r *http.Request) {
		if net == nil {
			http.Error(w, "no simulated network attached", http.StatusNotFound)
			return
		}
		dpid, err := strconv.ParseUint(r.URL.Query().Get("dpid"), 10, 64)
		if err != nil {
			http.Error(w, "dpid query parameter required", http.StatusBadRequest)
			return
		}
		sw := net.Switch(dpid)
		if sw == nil {
			http.Error(w, "no such switch", http.StatusNotFound)
			return
		}
		var flows []FlowView
		for _, e := range sw.Table().Entries() {
			flows = append(flows, FlowView{
				Priority:    e.Priority,
				Match:       e.Match.String(),
				Actions:     len(e.Actions),
				PacketCount: e.PacketCount,
				ByteCount:   e.ByteCount,
				IdleTimeout: e.IdleTimeout,
				HardTimeout: e.HardTimeout,
			})
		}
		writeJSON(w, flows)
	})
	return mux
}

func buildSummary(st *core.Stack) Summary {
	s := Summary{
		Mode:            st.Mode.String(),
		ControllerUp:    !st.Controller.Crashed(),
		Switches:        st.Controller.Switches(),
		EventsProcessed: st.Controller.Processed.Load(),
	}
	for _, name := range st.Controller.Apps() {
		events, failures := st.Controller.AppStats(name)
		row := AppStatus{
			Name:     name,
			Disabled: st.Controller.AppDisabled(name),
			Events:   events,
			Failures: failures,
		}
		if p := st.Proxy(name); p != nil {
			up := p.StubUp()
			row.StubUp = &up
		}
		s.Apps = append(s.Apps, row)
	}
	if st.CrashPad != nil {
		s.CrashPad = &CrashPadView{
			Crashes:        st.CrashPad.CrashesSeen.Load(),
			Byzantine:      st.CrashPad.ByzantineSeen.Load(),
			Recoveries:     st.CrashPad.Recoveries.Load(),
			DeepRecoveries: st.CrashPad.DeepRecoveries.Load(),
			Ignored:        st.CrashPad.IgnoredEvents.Load(),
			Transformed:    st.CrashPad.TransformedEvents.Load(),
			Tickets:        len(st.CrashPad.Tickets()),
		}
	}
	if st.NetLog != nil {
		s.NetLog = &NetLogView{
			Committed:      st.NetLog.CommittedTxns.Load(),
			Rollbacks:      st.NetLog.Rollbacks.Load(),
			RolledBackMods: st.NetLog.RolledBackMods.Load(),
			CounterCache:   st.NetLog.CounterCacheSize(),
		}
	}
	return s
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
