package legosdn_test

import (
	"testing"

	"legosdn/internal/chaos/campaign"
)

// TestChaosCorpusReplay is the tier-1 gate over the failing-seed
// regression corpus: every committed entry under testdata/chaos-corpus
// must replay byte-for-byte — same invariants fail, same schedule
// fingerprint, same report text. A diff here means a behavior change
// reached a previously-minimized failure; update the corpus entry
// deliberately (CHAOS_CORPUS_REGEN=1 in internal/chaos/campaign) or
// fix the regression, never ignore it.
func TestChaosCorpusReplay(t *testing.T) {
	entries, err := campaign.LoadCorpus("testdata/chaos-corpus")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no corpus entries committed under testdata/chaos-corpus")
	}
	for name, e := range entries {
		name, e := name, e
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			if e.Synthetic == nil {
				t.Errorf("%s: no synthetic hook; committed entries are expected to carry one", name)
			}
			if got := float64(len(e.Atoms)) / float64(e.OriginalAtoms); got > 0.25 {
				t.Errorf("%s: shrink ratio %.2f exceeds the 25%% acceptance bar", name, got)
			}
			if err := campaign.VerifyEntry(e); err != nil {
				t.Errorf("%s: %v", name, err)
			}
		})
	}
}
