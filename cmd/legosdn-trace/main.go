// Command legosdn-trace prints an OpenFlow control-traffic trace
// recorded by `legosdn -trace`, one line per message, with optional
// filtering — tcpdump for the control channel.
//
// Usage:
//
//	legosdn-trace file.trace
//	legosdn-trace -dir out -type FLOW_MOD file.trace
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"legosdn/internal/oftrace"
)

func main() {
	dir := flag.String("dir", "", "filter by direction: in | out")
	msgType := flag.String("type", "", "filter by message type, e.g. FLOW_MOD, PACKET_IN")
	dpid := flag.Uint64("dpid", 0, "filter by datapath id (0 = all)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: legosdn-trace [flags] <file.trace>")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		log.Fatalf("legosdn-trace: %v", err)
	}
	defer f.Close()
	r, err := oftrace.NewReader(f)
	if err != nil {
		log.Fatalf("legosdn-trace: %v", err)
	}
	shown, total := 0, 0
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatalf("legosdn-trace: record %d: %v", total, err)
		}
		total++
		if *dir != "" && !strings.EqualFold(rec.Dir.String(), *dir) {
			continue
		}
		if *dpid != 0 && rec.DPID != *dpid {
			continue
		}
		if *msgType != "" {
			msg, err := rec.Decode()
			if err != nil || !strings.EqualFold(msg.Type().String(), *msgType) {
				continue
			}
		}
		fmt.Println(rec)
		shown++
	}
	fmt.Fprintf(os.Stderr, "%d record(s), %d shown\n", total, shown)
}
