// Command legosdn-trace prints an OpenFlow control-traffic trace
// recorded by `legosdn -trace`, one line per message, with optional
// filtering — tcpdump for the control channel.
//
// Usage:
//
//	legosdn-trace file.trace
//	legosdn-trace -dir out -type FLOW_MOD file.trace
//	legosdn-trace -trace 0xabcd1234ef567890 file.trace
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"legosdn/internal/oftrace"
)

func main() {
	dir := flag.String("dir", "", "filter by direction: in | out")
	msgType := flag.String("type", "", "filter by message type, e.g. FLOW_MOD, PACKET_IN")
	dpid := flag.Uint64("dpid", 0, "filter by datapath id")
	traceID := flag.Uint64("trace", 0, "filter by event trace id (as printed, hex with 0x prefix or decimal)")
	flag.Parse()
	// A zero value is a legal dpid (and trace id), so "was the flag
	// given" — not "is it nonzero" — decides whether to filter.
	dpidSet, traceSet := false, false
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "dpid":
			dpidSet = true
		case "trace":
			traceSet = true
		}
	})
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: legosdn-trace [flags] <file.trace>")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		log.Fatalf("legosdn-trace: %v", err)
	}
	defer f.Close()
	r, err := oftrace.NewReader(f)
	if err != nil {
		log.Fatalf("legosdn-trace: %v", err)
	}
	shown, total := 0, 0
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatalf("legosdn-trace: record %d: %v", total, err)
		}
		total++
		if *dir != "" && !strings.EqualFold(rec.Dir.String(), *dir) {
			continue
		}
		if dpidSet && rec.DPID != *dpid {
			continue
		}
		if traceSet && rec.TraceID != *traceID {
			continue
		}
		if *msgType != "" {
			msg, err := rec.Decode()
			if err != nil || !strings.EqualFold(msg.Type().String(), *msgType) {
				continue
			}
		}
		fmt.Println(rec)
		shown++
	}
	fmt.Fprintf(os.Stderr, "%d record(s), %d shown\n", total, shown)
}
