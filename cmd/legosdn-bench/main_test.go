package main

import (
	"os"
	"path/filepath"
	"sort"
	"testing"

	"legosdn/internal/chaos"
	"legosdn/internal/chaos/campaign"
)

// -chaos-only with an unknown name must exit with the setup-error code
// and the help text must list the library sorted, so the user can scan
// for the name they meant.
func TestChaosScenarioNamesSorted(t *testing.T) {
	names := chaosScenarioNames()
	if len(names) == 0 {
		t.Fatal("empty scenario library")
	}
	if !sort.StringsAreSorted(names) {
		t.Fatalf("scenario names not sorted: %v", names)
	}
}

func TestRunChaosUnknownScenarioIsSetupError(t *testing.T) {
	if code := runChaos(1, "no-such-scenario", false, ""); code != exitSetupError {
		t.Fatalf("unknown scenario exited %d, want %d", code, exitSetupError)
	}
}

// Exit codes must separate "an invariant failed" (1) from "the run
// could not be set up" (2): CI treats the former as a regression and
// the latter as a broken job.
func TestRunCampaignExitCodes(t *testing.T) {
	// Setup error: nonsensical run count.
	if code := runCampaign(campaignOpts{seed: 1, runs: -1}); code != exitSetupError {
		t.Fatalf("runs=-1 exited %d, want %d", code, exitSetupError)
	}

	// Setup error: corpus replay over a malformed entry.
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "entry-bad.json"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := runCampaign(campaignOpts{replayDir: dir}); code != exitSetupError {
		t.Fatalf("malformed corpus exited %d, want %d", code, exitSetupError)
	}

	// Clean: replaying an empty corpus is a no-op success.
	if code := runCampaign(campaignOpts{replayDir: t.TempDir()}); code != exitOK {
		t.Fatal("empty corpus replay not exitOK")
	}

	// Invariant failure: a corpus entry whose recorded oracle no longer
	// matches the replay must exit 1, not 2 — that is the regression
	// signal the corpus exists to raise.
	spec := campaign.ScenarioSpec{
		Name: "exitcode-probe", Seed: campaign.RunSeed(11, 0),
		Switches: 1, Apps: 2, Events: 24, CheckpointEvery: 4,
		EventTimeoutMS: 250, Dup: 0.12, Delay: 0.06, Deterministic: true,
	}
	syn := &campaign.SyntheticCheck{Kind: campaign.SyntheticFiredAtLeast, Point: "appvisor/dup", N: 1}
	sched := chaos.NewSchedule(spec.Seed)
	rep := spec.Scenario().RunSchedule(sched, nil)
	syn.Apply(rep)
	if !rep.Failed() {
		t.Fatal("probe scenario did not trip the synthetic check")
	}
	atoms := chaos.AtomsFromDecisions(sched.Decisions())
	var failing []string
	for _, iv := range rep.Invariants {
		if iv.Err != nil {
			failing = append(failing, iv.Name)
		}
	}
	entry, err := campaign.BuildEntry(11, spec, syn, failing, len(atoms), atoms, 1)
	if err != nil {
		t.Fatal(err)
	}
	entry.ReplayRender += "stale oracle\n"
	tampered := t.TempDir()
	if _, err := campaign.WriteEntry(tampered, entry); err != nil {
		t.Fatal(err)
	}
	if code := runCampaign(campaignOpts{replayDir: tampered}); code != exitInvariantFail {
		t.Fatalf("diverged corpus entry exited %d, want %d", code, exitInvariantFail)
	}
}
