// Command legosdn-bench regenerates the LegoSDN evaluation: every
// table, figure and quantitative claim from the paper, as text tables.
// The same experiment code backs the root bench_test.go, so
// `go test -bench=.` and this binary agree.
//
// Usage:
//
//	legosdn-bench                          # full run
//	legosdn-bench -quick                   # reduced iteration counts
//	legosdn-bench -only C3                 # a single experiment by id
//	legosdn-bench -list                    # experiment index
//	legosdn-bench -bench-out BENCH.json    # also write headline numbers as JSON
//	legosdn-bench -only P1 -trace-sample 1 -trace-out spans.json
//	                                       # trace the pipeline, view in chrome://tracing
//	legosdn-bench -chaos -chaos-seed 7     # chaos scenario suite under seed 7
//	legosdn-bench -chaos -chaos-only av-drop
//	legosdn-bench -campaign -campaign-seeds 200 -campaign-shrink
//	                                       # randomized fault-schedule search; failures
//	                                       # are ddmin-shrunk to 1-minimal reproducers
//	legosdn-bench -campaign -campaign-replay testdata/chaos-corpus
//	                                       # replay the regression corpus byte-for-byte
//	legosdn-bench -state-dir ./state -durable-smoke 50
//	                                       # crash-recovery smoke: kill -9 mid-run,
//	                                       # rerun, grep recovered_txns=
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"legosdn/internal/chaos"
	"legosdn/internal/experiments"
	"legosdn/internal/trace"
)

// index maps experiment ids to constructors, using full-run parameters.
var index = []struct {
	id    string
	title string
	run   func(quick bool) experiments.Table
}{
	{"T1", "fate sharing (paper Table 1)", func(bool) experiments.Table { return experiments.Table1FateSharing() }},
	{"T2", "app survey (paper Table 2)", func(bool) experiments.Table { return experiments.Table2AppSurvey() }},
	{"F1", "architecture latency (paper Figure 1)", func(q bool) experiments.Table {
		return experiments.Figure1ArchLatency(pick(q, 500, 2000))
	}},
	{"C1", "bug corpus, 16% catastrophic (§2.1)", func(q bool) experiments.Table {
		return experiments.ClaimBugCorpus(pick(q, 12, 50), 7)
	}},
	{"C2", "control-loop latency (§3.1)", func(q bool) experiments.Table {
		return experiments.ClaimControlLoop(pick(q, 5, 20))
	}},
	{"C3", "NetLog rollback (§3.2)", func(bool) experiments.Table {
		return experiments.ClaimNetLogRollback([]int{1, 2, 4, 8, 16, 32, 64})
	}},
	{"C4", "Crash-Pad recovery by policy (§3.3)", func(q bool) experiments.Table {
		return experiments.ClaimCrashPadRecovery(pick(q, 3, 10))
	}},
	{"C5", "equivalence transform (§3.3)", func(bool) experiments.Table { return experiments.ClaimEquivalence() }},
	{"C6", "controller upgrade (§3.4)", func(bool) experiments.Table { return experiments.ClaimUpgrade(6) }},
	{"C7", "atomic updates (§3.4)", func(bool) experiments.Table { return experiments.ClaimAtomicUpdate() }},
	{"C8", "checkpoint cadence sweep (§5)", func(q bool) experiments.Table {
		return experiments.ClaimCheckpointSweep([]int{1, 2, 4, 8, 16, 32}, pick(q, 200, 1000))
	}},
	{"C9", "clone switchover (§5)", func(q bool) experiments.Table {
		return experiments.ClaimCloneSwitchover(pick(q, 60, 200))
	}},
	{"C10", "N-version voting (§3.4)", func(q bool) experiments.Table {
		return experiments.ClaimNVersion(pick(q, 60, 120))
	}},
	{"C11", "minimal causal sequences (§5)", func(bool) experiments.Table { return experiments.ClaimMCS(48) }},
	{"C12", "per-app resource limits (§3.4)", func(q bool) experiments.Table {
		return experiments.ClaimResourceLimits(pick(q, 100, 300))
	}},
	{"C13", "No-Compromise escalation (§5)", func(bool) experiments.Table {
		return experiments.ClaimInvariantEscalation()
	}},
	{"C14", "incremental checkpoints + group commit (§5)", func(q bool) experiments.Table {
		return experiments.ClaimIncrementalCheckpoints(pick(q, 200, 1000), 32<<10, 16)
	}},
	{"P1", "event pipeline throughput (serial vs parallel, direct vs AppVisor)", func(q bool) experiments.Table {
		return experiments.ClaimThroughput(q)
	}},
	{"P2", "data-plane scale: topologies, indexed lookups, AppVisor capacity", func(q bool) experiments.Table {
		return experiments.ClaimScale(q)
	}},
	{"R1", "crash forensics: MTTR breakdown by recovery phase, autopsy coverage", func(q bool) experiments.Table {
		return experiments.ClaimRecoveryForensics(q)
	}},
	{"S1", "chaos search: fault-schedule minimization to 1-minimal reproducers (§5)", func(q bool) experiments.Table {
		return experiments.ClaimChaosSearch(q)
	}},
	{"H1", "replicated control plane: leader-kill failover MTTR", func(q bool) experiments.Table {
		return experiments.ClaimFailoverMTTR(q)
	}},
}

func pick(quick bool, q, full int) int {
	if quick {
		return q
	}
	return full
}

func main() {
	quick := flag.Bool("quick", false, "reduced iteration counts")
	only := flag.String("only", "", "run a subset of experiments by id, comma-separated (e.g. C3 or P2,R1)")
	list := flag.Bool("list", false, "print the experiment index and exit")
	noMetrics := flag.Bool("no-metrics", false, "suppress the per-experiment metrics JSON blocks")
	benchOut := flag.String("bench-out", "", "write each experiment's headline numbers (Table.Values) to this JSON file")
	traceSample := flag.Float64("trace-sample", 0, "trace this fraction of injected events in the perf experiments (0 disables)")
	traceAddr := flag.String("trace-addr", "", "serve /debug/traces and pprof on this address while experiments run")
	traceOut := flag.String("trace-out", "", "write collected spans as Chrome trace_event JSON (load in chrome://tracing)")
	chaosRun := flag.Bool("chaos", false, "run the chaos scenario suite instead of the experiments")
	chaosSeed := flag.Uint64("chaos-seed", 1, "fault schedule seed for -chaos (same seed, same faults)")
	chaosOnly := flag.String("chaos-only", "", "run a single chaos scenario by name")
	chaosVerbose := flag.Bool("chaos-v", false, "print each scenario's full report and fault schedule")
	campaignRun := flag.Bool("campaign", false, "run a randomized chaos campaign instead of the experiments")
	campaignSeed := flag.Uint64("campaign-seed", 1, "campaign seed: derives every run's scenario and fault schedule")
	campaignSeeds := flag.Int("campaign-seeds", 100, "how many randomized per-seed scenarios the campaign runs")
	campaignShrink := flag.Bool("campaign-shrink", false, "ddmin-shrink each failing run's fault schedule to a 1-minimal reproducer")
	campaignOut := flag.String("campaign-out", "", "write the campaign summary JSON to this file")
	campaignCorpus := flag.String("campaign-corpus", "", "persist minimized failures as regression corpus entries under this directory")
	campaignReplay := flag.String("campaign-replay", "", "replay a regression corpus directory byte-for-byte instead of searching")
	campaignParallel := flag.Int("campaign-parallel", 4, "campaign worker count (results are identical at any parallelism)")
	autopsyDir := flag.String("autopsy-dir", "", "persist every autopsy report a chaos stack assembles as JSON files under this directory")
	stateDir := flag.String("state-dir", "", "durable state directory for -durable-smoke (WAL-backed checkpoints + NetLog journal)")
	smokeIters := flag.Int("durable-smoke", 0, "run N crash-recovery smoke iterations against -state-dir, then exit")
	smokeHold := flag.Duration("durable-smoke-hold", 80*time.Millisecond, "how long each smoke iteration holds its transaction open")
	smokeKill := flag.Int("durable-smoke-kill", 0, "SIGKILL this process mid-transaction at iteration N (0 disables); deterministic crash for recovery testing")
	haSmoke := flag.Bool("ha-smoke", false, "run the 3-replica kill-leader failover smoke and exit (0 = all invariants held)")
	haSmokeSeed := flag.Uint64("ha-smoke-seed", 1, "fault schedule seed for -ha-smoke")
	campaignAutopsyMax := flag.Int("campaign-autopsy-max", 0, "cap how many failing campaign runs persist autopsies under -autopsy-dir (0 = default cap, negative = unlimited)")
	floors := flag.String("floor", "", "comma-separated key=min checks against experiment headline values (e.g. p2_max_events_per_sec=20000); exit nonzero if any value is missing or below its floor")
	flag.Parse()

	if *smokeIters > 0 {
		os.Exit(runDurableSmoke(*stateDir, *smokeIters, *smokeHold, *smokeKill))
	}
	if *haSmoke {
		os.Exit(runHASmoke(*haSmokeSeed, *autopsyDir))
	}
	if *chaosRun {
		os.Exit(runChaos(*chaosSeed, *chaosOnly, *chaosVerbose, *autopsyDir))
	}
	if *campaignRun || *campaignReplay != "" {
		os.Exit(runCampaign(campaignOpts{
			seed:       *campaignSeed,
			runs:       *campaignSeeds,
			shrink:     *campaignShrink,
			parallel:   *campaignParallel,
			out:        *campaignOut,
			corpusDir:  *campaignCorpus,
			replayDir:  *campaignReplay,
			autopsyDir: *autopsyDir,
			autopsyMax: *campaignAutopsyMax,
		}))
	}

	var tracer *trace.Tracer
	if *traceSample > 0 || *traceAddr != "" || *traceOut != "" {
		tracer = trace.New(trace.Options{SampleRate: *traceSample})
		experiments.SetTracer(tracer)
	}
	if *traceAddr != "" {
		go func() {
			srv := &http.Server{Addr: *traceAddr, Handler: trace.NewDebugMux(tracer, nil)}
			fmt.Printf("traces on http://%s/debug/traces\n", *traceAddr)
			if err := srv.ListenAndServe(); err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "legosdn-bench: trace server: %v\n", err)
			}
		}()
	}

	if *list {
		for _, e := range index {
			fmt.Printf("%-4s %s\n", e.id, e.title)
		}
		return
	}
	ran := 0
	start := time.Now()
	results := benchResults{Generated: start.UTC().Format(time.RFC3339), Experiments: map[string]benchResult{}}
	for _, e := range index {
		if !wantExperiment(*only, e.id) {
			continue
		}
		t0 := time.Now()
		table := e.run(*quick)
		fmt.Println(table.Render())
		if table.Metrics != nil && !*noMetrics {
			// Machine-readable companion block: the instrumented stack's
			// frozen registry (counters, gauges, latency quantiles).
			if b, err := json.MarshalIndent(table.Metrics, "", "  "); err == nil {
				fmt.Printf("metrics %s %s\n", e.id, b)
			}
		}
		if table.Values != nil {
			results.Experiments[table.ID] = benchResult{Title: table.Title, Values: table.Values}
		}
		fmt.Printf("(%s completed in %s)\n\n", e.id, time.Since(t0).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "legosdn-bench: no experiment %q (try -list)\n", *only)
		os.Exit(2)
	}
	if *benchOut != "" {
		b, err := json.MarshalIndent(results, "", "  ")
		if err == nil {
			err = os.WriteFile(*benchOut, append(b, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "legosdn-bench: writing %s: %v\n", *benchOut, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *benchOut)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err == nil {
			err = tracer.WriteChrome(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "legosdn-bench: writing %s: %v\n", *traceOut, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (open in chrome://tracing)\n", *traceOut)
	}
	fmt.Printf("ran %d experiment(s) in %s\n", ran, time.Since(start).Round(time.Millisecond))
	if *floors != "" {
		if !checkFloors(*floors, results) {
			os.Exit(1)
		}
	}
}

// wantExperiment matches an experiment id against the comma-separated
// -only spec (empty spec = run everything).
func wantExperiment(spec, id string) bool {
	if spec == "" {
		return true
	}
	for _, want := range strings.Split(spec, ",") {
		if strings.EqualFold(strings.TrimSpace(want), id) {
			return true
		}
	}
	return false
}

// checkFloors enforces -floor: every key=min pair must find a headline
// value at or above the floor among the experiments that ran. This is
// the CI regression gate for throughput numbers.
func checkFloors(spec string, results benchResults) bool {
	all := map[string]float64{}
	for _, res := range results.Experiments {
		for k, v := range res.Values {
			all[k] = v
		}
	}
	ok := true
	for _, pair := range strings.Split(spec, ",") {
		kv := strings.SplitN(strings.TrimSpace(pair), "=", 2)
		if len(kv) != 2 {
			fmt.Fprintf(os.Stderr, "legosdn-bench: bad -floor entry %q (want key=min)\n", pair)
			ok = false
			continue
		}
		want, err := strconv.ParseFloat(kv[1], 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "legosdn-bench: bad -floor value %q: %v\n", kv[1], err)
			ok = false
			continue
		}
		got, have := all[kv[0]]
		switch {
		case !have:
			fmt.Fprintf(os.Stderr, "legosdn-bench: floor %s: value not produced by this run\n", kv[0])
			ok = false
		case got < want:
			fmt.Fprintf(os.Stderr, "legosdn-bench: floor %s: %.0f below minimum %.0f\n", kv[0], got, want)
			ok = false
		default:
			fmt.Printf("floor %s: %.0f >= %.0f ok\n", kv[0], got, want)
		}
	}
	return ok
}

// runChaos drives the chaos scenario library under one seed and prints
// a result table; the exit code is nonzero if any invariant fails, so a
// CI smoke step can gate on it. A failing run reproduces from the
// printed seed alone.
func runChaos(seed uint64, only string, verbose bool, autopsyDir string) int {
	scenarios := chaos.Library()
	if only != "" {
		sc, ok := chaos.Find(only)
		if !ok {
			fmt.Fprintf(os.Stderr, "legosdn-bench: no chaos scenario %q (have: %s)\n",
				only, strings.Join(chaosScenarioNames(), ", "))
			return exitSetupError
		}
		scenarios = []chaos.Scenario{sc}
	}

	fmt.Printf("chaos suite: %d scenario(s), seed %d\n\n", len(scenarios), seed)
	fmt.Printf("%-22s %-8s %-8s %-8s %s\n", "SCENARIO", "EVENTS", "FAULTS", "RESULT", "DETAIL")
	failed := 0
	start := time.Now()
	for _, sc := range scenarios {
		t0 := time.Now()
		if autopsyDir != "" {
			// One subdirectory per scenario: autopsy ids restart at 1 for
			// every stack, so two scenarios must not share a directory.
			sc.AutopsyDir = filepath.Join(autopsyDir, sc.Name)
		}
		rep := sc.Run(seed, nil)
		faults := 0
		for _, c := range rep.Fired {
			faults += c
		}
		result, detail := "ok", fmt.Sprintf("%s", time.Since(t0).Round(time.Millisecond))
		if rep.Failed() {
			failed++
			result = "FAIL"
			for _, iv := range rep.Invariants {
				if iv.Err != nil {
					detail = fmt.Sprintf("%s: %v", iv.Name, iv.Err)
					break
				}
			}
		}
		fmt.Printf("%-22s %-8d %-8d %-8s %s\n", sc.Name, rep.EventsInjected, faults, result, detail)
		if verbose || rep.Failed() {
			fmt.Println()
			fmt.Print(rep.Render())
			if verbose {
				fmt.Print(rep.ScheduleFingerprint)
			}
			fmt.Println()
		}
		if rep.Failed() {
			// A failing scenario gets its forensics printed: the autopsy
			// ties the violated invariants to the flight recorder's last
			// records, so the console has the why, not just the what.
			for _, a := range rep.Autopsies {
				if a.Trigger == "chaos-invariant" {
					fmt.Print(a.Render())
					fmt.Println()
				}
			}
			if sc.AutopsyDir != "" {
				fmt.Printf("autopsies persisted under %s\n\n", sc.AutopsyDir)
			}
		}
	}
	fmt.Printf("\n%d/%d scenarios passed in %s (reproduce with -chaos-seed %d)\n",
		len(scenarios)-failed, len(scenarios), time.Since(start).Round(time.Millisecond), seed)
	if failed > 0 {
		return exitInvariantFail
	}
	return exitOK
}

// benchResults is the -bench-out file layout: a timestamp plus each
// experiment's headline numbers, so perf can be diffed across commits.
type benchResults struct {
	Generated   string                 `json:"generated"`
	Experiments map[string]benchResult `json:"experiments"`
}

type benchResult struct {
	Title  string             `json:"title"`
	Values map[string]float64 `json:"values"`
}
