package main

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"os"
	"syscall"
	"time"

	"legosdn/internal/controller"
	"legosdn/internal/core"
	"legosdn/internal/durable"
	"legosdn/internal/metrics"
	"legosdn/internal/netsim"
	"legosdn/internal/openflow"
)

// runDurableSmoke is the crash-recovery smoke workload behind
// `legosdn-bench -state-dir DIR -durable-smoke N`. Each iteration opens
// a journaled NetLog transaction, installs a rule under it, runs one
// checkpointed workload event, holds the transaction open for the hold
// window, then aborts it — so an external `kill -9` at any point lands
// inside an unresolved transaction with high probability, and
// `-durable-smoke-kill K` SIGKILLs the process itself at iteration K
// while the transaction is provably unresolved (its begin/op records
// are fsync'd before SendFlowMod returns). A restart with the same
// -state-dir prints greppable `recovered_txns=` / `restored_checkpoints=`
// counters before iterating again, which is what the CI smoke step gates
// on.
func runDurableSmoke(stateDir string, iters int, hold time.Duration, killAt int) int {
	if stateDir == "" {
		fmt.Fprintln(os.Stderr, "legosdn-bench: -durable-smoke requires -state-dir")
		return 2
	}
	st, err := durable.OpenState(stateDir, 0, durable.Options{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "legosdn-bench: opening state dir: %v\n", err)
		return 1
	}
	defer st.Close()
	fmt.Printf("durable-smoke: state-dir=%s restored_checkpoints=%d orphan_txns=%d\n",
		stateDir, st.Checkpoints.Restored(), len(st.Journal.Orphans()))

	stack := core.NewStack(core.Config{
		Mode:             core.ModeLegoSDN,
		CheckpointEvery:  1,
		HeartbeatTimeout: -1,
		Metrics:          metrics.NewRegistry(),
		Durable:          st,
	})
	defer stack.Close()
	if err := stack.AddApp(func() controller.App { return &smokeApp{} }); err != nil {
		fmt.Fprintf(os.Stderr, "legosdn-bench: adding smoke app: %v\n", err)
		return 1
	}
	// ConnectNetwork resyncs shadows and replays any orphaned
	// transaction's inverses before new events flow.
	n := netsim.Single(2, nil)
	if err := stack.ConnectNetwork(n); err != nil {
		fmt.Fprintf(os.Stderr, "legosdn-bench: connecting network: %v\n", err)
		return 1
	}
	fmt.Printf("durable-smoke: recovered_txns=%d recovered_mods=%d\n",
		st.RecoveredTxns(), st.RecoveredMods())

	for i := 1; i <= iters; i++ {
		// The kill window: from the first journaled op until Abort
		// writes its record, this transaction is unresolved on disk.
		tx := stack.NetLog.Begin()
		stack.NetLog.SetActive(tx)
		if err := stack.Controller.SendFlowMod(1, smokeTxnRule(i)); err != nil {
			fmt.Fprintf(os.Stderr, "legosdn-bench: smoke txn flow mod: %v\n", err)
			return 1
		}
		stack.NetLog.SetActive(nil)

		if err := stack.Controller.InjectSync(controller.Event{
			Kind: controller.EventPacketIn,
			DPID: 1,
			Message: &openflow.PacketIn{
				BufferID: openflow.BufferIDNone,
				InPort:   1,
				Reason:   openflow.PacketInReasonNoMatch,
			},
		}); err != nil {
			fmt.Fprintf(os.Stderr, "legosdn-bench: smoke event %d: %v\n", i, err)
			return 1
		}
		if i == killAt {
			// Die with the transaction neither committed nor aborted:
			// the deterministic crash the CI recovery gate depends on.
			fmt.Printf("durable-smoke: self-SIGKILL mid-transaction at iteration %d\n", i)
			_ = syscall.Kill(syscall.Getpid(), syscall.SIGKILL)
		}
		time.Sleep(hold)
		if err := tx.Abort(); err != nil {
			fmt.Fprintf(os.Stderr, "legosdn-bench: smoke txn abort: %v\n", err)
			return 1
		}
		fmt.Printf("durable-smoke: iteration %d/%d fingerprint=%08x\n",
			i, iters, crc32.ChecksumIEEE([]byte(n.Switch(1).Table().Fingerprint())))
	}
	fmt.Printf("durable-smoke: done iterations=%d\n", iters)
	return 0
}

// smokeApp installs one rule per packet-in from a 64-slot rule space and
// checkpoints its sequence counter, so restarts restore mid-stream.
type smokeApp struct {
	seq int
}

// Name implements controller.App.
func (*smokeApp) Name() string { return "smoke" }

// Subscriptions implements controller.App.
func (*smokeApp) Subscriptions() []controller.EventKind {
	return []controller.EventKind{controller.EventPacketIn}
}

// HandleEvent implements controller.App.
func (a *smokeApp) HandleEvent(ctx controller.Context, ev controller.Event) error {
	a.seq++
	m := openflow.MatchAll()
	m.Wildcards &^= openflow.WildcardDlType | openflow.WildcardNwProto | openflow.WildcardTpDst
	m.DlType = 0x0800
	m.NwProto = 6
	m.TpDst = uint16(8000 + a.seq%64)
	return ctx.SendFlowMod(ev.DPID, &openflow.FlowMod{
		Match:    m,
		Command:  openflow.FlowModAdd,
		Priority: 100,
		BufferID: openflow.BufferIDNone,
		OutPort:  openflow.PortNone,
		Actions:  []openflow.Action{&openflow.ActionOutput{Port: 2}},
	})
}

// Snapshot implements controller.Snapshotter.
func (a *smokeApp) Snapshot() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(a.seq); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Restore implements controller.Snapshotter.
func (a *smokeApp) Restore(state []byte) error {
	return gob.NewDecoder(bytes.NewReader(state)).Decode(&a.seq)
}

// smokeTxnRule is the i-th iteration's deliberately-doomed rule,
// disjoint from smokeApp's space so rollback residue would be visible.
func smokeTxnRule(i int) *openflow.FlowMod {
	m := openflow.MatchAll()
	m.Wildcards &^= openflow.WildcardDlType | openflow.WildcardNwProto | openflow.WildcardTpDst
	m.DlType = 0x0800
	m.NwProto = 17
	m.TpDst = uint16(9000 + i%64)
	return &openflow.FlowMod{
		Match:    m,
		Command:  openflow.FlowModAdd,
		Priority: 200,
		BufferID: openflow.BufferIDNone,
		OutPort:  openflow.PortNone,
		Actions:  []openflow.Action{&openflow.ActionOutput{Port: 2}},
	}
}
