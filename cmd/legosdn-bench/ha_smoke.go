package main

import (
	"fmt"
	"os"
	"sort"

	"legosdn/internal/chaos"
	"legosdn/internal/metrics"
)

// runHASmoke is the CI failover gate behind `legosdn-bench -ha-smoke`:
// it runs the ha-kill-leader-mid-txn library scenario — a 3-replica
// cluster with quorum commit, leader SIGKILLed mid-transaction, a
// follower wins the lease and rolls the orphan back — and exits zero
// only if every invariant held. Exit codes match the chaos/campaign
// convention: 0 ok, 1 an invariant failed, 2 setup broke.
func runHASmoke(seed uint64, autopsyDir string) int {
	sc, ok := chaos.Find("ha-kill-leader-mid-txn")
	if !ok {
		fmt.Fprintln(os.Stderr, "legosdn-bench: ha-smoke: scenario ha-kill-leader-mid-txn not in library")
		return exitSetupError
	}
	sc.AutopsyDir = autopsyDir
	rep := sc.Run(seed, metrics.NewRegistry())

	fmt.Printf("ha-smoke: scenario=%s seed=%d events=%d\n", sc.Name, seed, rep.EventsInjected)
	keys := make([]string, 0, len(rep.Fired))
	for k := range rep.Fired {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  %-20s %d\n", k, rep.Fired[k])
	}
	bad := 0
	for _, inv := range rep.Invariants {
		status := "ok"
		if inv.Err != nil {
			status = "FAIL: " + inv.Err.Error()
			bad++
		}
		fmt.Printf("  invariant %-24s %s\n", inv.Name, status)
	}
	if bad > 0 {
		fmt.Printf("ha-smoke: %d invariant violation(s)\n", bad)
		return exitInvariantFail
	}
	fmt.Println("ha-smoke: all invariants held")
	return exitOK
}
