package main

import (
	"fmt"
	"os"
	"sort"
	"time"

	"legosdn/internal/chaos"
	"legosdn/internal/chaos/campaign"
)

// Campaign/chaos exit codes: 0 all invariants held, 1 an invariant
// failed (or a corpus entry stopped reproducing), 2 the run could not
// be set up at all (bad flags, unknown scenario, unwritable output).
// CI gates on the distinction: 1 pages the on-call for a regression,
// 2 means the job itself is broken.
const (
	exitOK            = 0
	exitInvariantFail = 1
	exitSetupError    = 2
)

// campaignOpts carries the -campaign flag set.
type campaignOpts struct {
	seed       uint64
	runs       int
	shrink     bool
	parallel   int
	out        string // summary JSON path
	corpusDir  string // write minimized failures here
	replayDir  string // replay an existing corpus instead of searching
	autopsyDir string
	autopsyMax int // cap on failing runs that persist autopsies
}

// runCampaign drives either a corpus replay (-campaign-replay) or a
// randomized search campaign, printing the summary and returning a
// process exit code.
func runCampaign(o campaignOpts) int {
	if o.replayDir != "" {
		return replayCorpus(o.replayDir)
	}

	sum, err := campaign.Run(campaign.Config{
		Seed:               o.seed,
		Runs:               o.runs,
		Shrink:             o.shrink,
		Parallel:           o.parallel,
		CorpusDir:          o.corpusDir,
		AutopsyDir:         o.autopsyDir,
		MaxAutopsyFailures: o.autopsyMax,
		Log:                os.Stdout,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "legosdn-bench: campaign: %v\n", err)
		return exitSetupError
	}

	var ratioSum float64
	for _, rec := range sum.Records {
		if sh := rec.Shrink; sh != nil && sh.Reproducible {
			ratioSum += sh.Ratio
		}
	}
	fmt.Printf("\ncampaign seed %d: %d seeds run, %d failure(s), %d shrunk",
		sum.CampaignSeed, sum.SeedsRun, sum.Failures, sum.Shrunk)
	if sum.Shrunk > 0 {
		fmt.Printf(" (avg shrink ratio %.2f, %d replays)", ratioSum/float64(sum.Shrunk), sum.TotalReplays)
	}
	fmt.Printf(", %s wall\n", (time.Duration(sum.WallMS) * time.Millisecond).Round(time.Millisecond))
	for _, kv := range sortedTallies(sum.ClassTallies) {
		fmt.Printf("  class %-10s %d run(s)\n", kv.k, kv.v)
	}
	fmt.Printf("(reproduce with -campaign-seed %d -campaign-seeds %d)\n", sum.CampaignSeed, sum.SeedsRun)

	if o.out != "" {
		b, err := sum.DeterministicJSON()
		if err == nil {
			err = os.WriteFile(o.out, append(b, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "legosdn-bench: writing %s: %v\n", o.out, err)
			return exitSetupError
		}
		fmt.Printf("wrote %s\n", o.out)
	}
	if sum.Failures > 0 {
		return exitInvariantFail
	}
	return exitOK
}

// replayCorpus verifies every entry in a regression corpus directory
// byte-for-byte: same invariants fail, same schedule fingerprint, same
// report text.
func replayCorpus(dir string) int {
	entries, err := campaign.LoadCorpus(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "legosdn-bench: corpus %s: %v\n", dir, err)
		return exitSetupError
	}
	if len(entries) == 0 {
		fmt.Printf("corpus %s: no entries\n", dir)
		return exitOK
	}
	names := make([]string, 0, len(entries))
	for name := range entries {
		names = append(names, name)
	}
	sort.Strings(names)
	bad := 0
	start := time.Now()
	for _, name := range names {
		e := entries[name]
		t0 := time.Now()
		err := campaign.VerifyEntry(e)
		status := "ok"
		if err != nil {
			status = "FAIL"
			bad++
		}
		fmt.Printf("%-28s %-22s %2d atom(s)  %-4s %s\n",
			name, e.Spec.Name, len(e.Atoms), status, time.Since(t0).Round(time.Millisecond))
		if err != nil {
			fmt.Printf("  %v\n", err)
		}
	}
	fmt.Printf("\n%d/%d corpus entries replayed byte-for-byte in %s\n",
		len(names)-bad, len(names), time.Since(start).Round(time.Millisecond))
	if bad > 0 {
		return exitInvariantFail
	}
	return exitOK
}

type tally struct {
	k string
	v int
}

// sortedTallies renders a class-count map in stable order.
func sortedTallies(m map[string]int) []tally {
	out := make([]tally, 0, len(m))
	for k, v := range m {
		out = append(out, tally{k, v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].k < out[j].k })
	return out
}

// chaosScenarioNames lists the chaos scenario library sorted by name,
// for the -chaos-only error message.
func chaosScenarioNames() []string {
	lib := chaos.Library()
	names := make([]string, 0, len(lib))
	for _, s := range lib {
		names = append(names, s.Name)
	}
	sort.Strings(names)
	return names
}
