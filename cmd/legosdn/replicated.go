package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"legosdn/internal/controller"
	"legosdn/internal/durable"
	"legosdn/internal/netsim"
	"legosdn/internal/openflow"
	"legosdn/internal/replica"
	"legosdn/internal/workload"
)

// runReplicated is the -replicas N demo: a replicated control plane
// over the simulated network. N replicas elect a leader, traffic
// flows, then the leader is killed with a journaled transaction still
// open — a follower wins the lease, rolls the orphan back from its
// replicated journal, takes over the switches, and traffic keeps
// flowing.
func runReplicated(replicas int, n *netsim.Network, appNames []string, flows int, stateDir string, topo string) {
	if stateDir == "" {
		dir, err := os.MkdirTemp("", "legosdn-replicas-")
		if err != nil {
			log.Fatalf("legosdn: %v", err)
		}
		defer os.RemoveAll(dir)
		stateDir = dir
	}

	factories := make([]func() controller.App, 0, len(appNames))
	for _, name := range appNames {
		name := name
		factories = append(factories, func() controller.App { return mustApp(name) })
	}

	cluster := replica.New(replica.Options{
		Dir:            stateDir,
		Replicas:       replicas,
		CommitMode:     replica.CommitQuorum,
		LeaseTTL:       150 * time.Millisecond,
		HeartbeatEvery: 50 * time.Millisecond,
		WAL:            durable.Options{GroupCommit: true},
		Apps:           factories,
		Logf:           log.Printf,
	})
	if err := cluster.Start(n); err != nil {
		log.Fatalf("legosdn: cluster start: %v", err)
	}
	defer cluster.Close()
	fmt.Printf("replicated control plane up: %d replicas, leader %s, quorum commit, state in %s\n",
		replicas, cluster.LeaderName(), stateDir)
	fmt.Printf("network up: %d switches, %d hosts (%s)\n", len(n.Switches()), len(n.Hosts()), topo)

	gen := workload.NewTrafficGen(n, 42)
	gen.SendFlows(flows)
	settle(cluster.Stack())
	fmt.Printf("sent %d flows via leader %s; delivered frames per host:", flows, cluster.LeaderName())
	for _, h := range n.Hosts() {
		fmt.Printf(" %s=%d", h.Name, h.ReceivedCount())
	}
	fmt.Println()

	// Stage a journaled transaction that never resolves: the successor
	// must presume abort and roll these rules back during failover.
	stack := cluster.Stack()
	sw := n.Switches()[0]
	tx := stack.NetLog.Begin()
	stack.NetLog.SetActive(tx)
	for i := 0; i < 2; i++ {
		m := openflow.MatchAll()
		m.Wildcards &^= openflow.WildcardDlType | openflow.WildcardNwProto | openflow.WildcardTpDst
		m.DlType = 0x0800
		m.NwProto = 6
		m.TpDst = uint16(9900 + i)
		if err := stack.Controller.SendFlowMod(sw.DPID, &openflow.FlowMod{
			Match: m, Command: openflow.FlowModAdd, Priority: 250,
			BufferID: openflow.BufferIDNone, OutPort: openflow.PortNone,
			Actions: []openflow.Action{&openflow.ActionOutput{Port: 1}},
		}); err != nil {
			log.Fatalf("legosdn: staging transaction: %v", err)
		}
	}
	stack.NetLog.SetActive(nil)
	if err := stack.Controller.Barrier(sw.DPID); err != nil {
		log.Fatalf("legosdn: %v", err)
	}

	oldLeader := cluster.LeaderName()
	fmt.Printf("\nkilling leader %s with a journaled transaction still open ...\n", oldLeader)
	if err := cluster.KillLeader(); err != nil {
		log.Fatalf("legosdn: %v", err)
	}
	successor, err := cluster.WaitLeader(oldLeader, 30*time.Second)
	if err != nil {
		log.Fatalf("legosdn: failover never completed: %v", err)
	}
	fmt.Printf("RESULT: %s took over in %s (elections=%d, rolled back %d orphaned transaction(s), %d flow-mod(s))\n",
		cluster.LeaderName(), cluster.LastMTTR().Round(time.Millisecond),
		cluster.Elections(), cluster.State().RecoveredTxns(), cluster.State().RecoveredMods())

	before := delivered(n)
	gen.SendFlows(flows)
	settle(successor)
	fmt.Printf("\npost-failover traffic (%d flows): delivered %d frames via %s\n",
		flows, delivered(n)-before, cluster.LeaderName())

	fmt.Println("\nfinal flow-table sizes:")
	for _, s := range n.Switches() {
		fmt.Printf("  s%d: %d entries, %d packet-ins, %d flow-mods\n",
			s.DPID, s.Table().Len(), s.PacketIns.Load(), s.FlowModsRx.Load())
	}
}
