// Command legosdn runs a complete LegoSDN deployment against a
// simulated network and narrates a failure-and-recovery scenario: apps
// come up in stubs, traffic flows, a deterministic bug crashes an app,
// and — depending on the architecture — the control plane either dies
// (monolithic) or recovers (legosdn), with the problem ticket printed.
//
// Usage:
//
//	legosdn -mode legosdn -topo linear:3 -apps learning-switch,stats-collector
//	legosdn -mode monolithic            # watch fate sharing happen
package main

import (
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"legosdn/internal/apps"
	"legosdn/internal/controller"
	"legosdn/internal/core"
	"legosdn/internal/crashpad"
	"legosdn/internal/durable"
	"legosdn/internal/invariant"
	"legosdn/internal/netsim"
	"legosdn/internal/oftrace"
	"legosdn/internal/openflow"
	"legosdn/internal/status"
	"legosdn/internal/trace"
	"legosdn/internal/workload"
)

func main() {
	mode := flag.String("mode", "legosdn", "architecture: monolithic | isolated | legosdn")
	topo := flag.String("topo", "single:4", "topology: single:N | linear:N | ring:N | tree:D,F | fattree:K")
	appList := flag.String("apps", "learning-switch,stats-collector",
		fmt.Sprintf("comma-separated apps (available: %s)", strings.Join(apps.Names(), ", ")))
	flows := flag.Int("flows", 20, "random flows to generate before and after the failure")
	poison := flag.Int("poison", 6666, "TCP port whose traffic crashes the first app (0 disables)")
	checkInv := flag.Bool("invariants", true, "run the invariant checkers after each event")
	policyFile := flag.String("policy", "", "operator policy file (§3.3 policy language)")
	statusAddr := flag.String("status", "", "serve the HTTP status API on this address (e.g. 127.0.0.1:8080)")
	metricsAddr := flag.String("metrics-addr", "", "serve Prometheus metrics on this address (e.g. :9090)")
	traceFile := flag.String("trace", "", "record all OpenFlow control traffic to this file")
	traceSample := flag.Float64("trace-sample", 0.01,
		"fraction of injected events to trace end-to-end (0 disables, 1 traces all)")
	traceBuf := flag.Int("trace-buf", 0, "span ring-buffer capacity (0 = default)")
	stateDir := flag.String("state-dir", "",
		"durable state directory: checkpoints and the NetLog transaction journal persist here, and a restart rolls back any transaction a crash interrupted (empty = in-memory only)")
	checkpointDelta := flag.Int("checkpoint-delta", 16,
		"incremental checkpoints: full image every Nth per-app checkpoint, byte-range deltas between (<=1 stores every checkpoint as a full image)")
	walGroupCommit := flag.Bool("wal-group-commit", true,
		"batch concurrent WAL appends under one fsync (only meaningful with -state-dir)")
	replicas := flag.Int("replicas", 1,
		"run N control-plane replicas with leader election and WAL shipping; kills the leader mid-transaction and narrates the failover (>1 implies -mode legosdn, ignores -poison)")
	flag.Parse()

	m, err := parseMode(*mode)
	if err != nil {
		log.Fatalf("legosdn: %v", err)
	}
	n, err := buildTopo(*topo)
	if err != nil {
		log.Fatalf("legosdn: %v", err)
	}

	if *replicas > 1 {
		var names []string
		for _, name := range strings.Split(*appList, ",") {
			names = append(names, strings.TrimSpace(name))
		}
		runReplicated(*replicas, n, names, *flows, *stateDir, *topo)
		return
	}

	var policies *crashpad.PolicySet
	if *policyFile != "" {
		text, err := os.ReadFile(*policyFile)
		if err != nil {
			log.Fatalf("legosdn: %v", err)
		}
		policies, err = crashpad.ParsePolicies(string(text))
		if err != nil {
			log.Fatalf("legosdn: %v", err)
		}
		fmt.Printf("loaded operator policy from %s\n", *policyFile)
	}

	tracer := trace.New(trace.Options{SampleRate: *traceSample, BufferSize: *traceBuf})
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelInfo}))

	cfg := core.Config{
		Mode:     m,
		Policies: policies,
		OnTicket: func(tk *crashpad.Ticket) {
			fmt.Println()
			fmt.Println(tk.Render())
		},
		Logf:   log.Printf,
		Tracer: tracer,
		Logger: logger,
	}
	if *checkInv {
		cfg.Checker = invariant.NewSuite(n).CrashPadChecker(nil)
	}
	cfg.CheckpointDelta = *checkpointDelta
	if *stateDir != "" {
		st, err := durable.OpenState(*stateDir, 0, durable.Options{GroupCommit: *walGroupCommit})
		if err != nil {
			log.Fatalf("legosdn: %v", err)
		}
		defer st.Close()
		cfg.Durable = st
		fmt.Printf("durable state in %s: restored %d checkpoints, %d interrupted transaction(s) pending rollback\n",
			*stateDir, st.Checkpoints.Restored(), len(st.Journal.Orphans()))
	}
	stack := core.NewStack(cfg)
	defer stack.Close()
	logger.Info("legosdn starting", append(core.BuildInfoAttrs(),
		"mode", m.String(), "trace_sample", *traceSample)...)

	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			log.Fatalf("legosdn: %v", err)
		}
		defer f.Close()
		tw, err := oftrace.NewWriter(f)
		if err != nil {
			log.Fatalf("legosdn: %v", err)
		}
		defer tw.Flush()
		oftrace.Attach(stack.Controller, tw)
		fmt.Printf("recording control traffic to %s\n", *traceFile)
	}
	if *statusAddr != "" {
		go func() {
			srv := &http.Server{Addr: *statusAddr, Handler: status.Handler(stack, n)}
			fmt.Printf("status API on http://%s/status\n", *statusAddr)
			if err := srv.ListenAndServe(); err != http.ErrServerClosed {
				log.Printf("legosdn: status server: %v", err)
			}
		}()
	}
	if *metricsAddr != "" {
		go func() {
			mux := trace.NewDebugMux(tracer, stack.Metrics)
			mux.Handle("/debug/autopsy", stack.Autopsies.HTTPHandler())
			srv := &http.Server{Addr: *metricsAddr, Handler: mux}
			fmt.Printf("metrics on http://%s/metrics, traces on http://%s/debug/traces, autopsies on http://%s/debug/autopsy, pprof on http://%s/debug/pprof\n",
				*metricsAddr, *metricsAddr, *metricsAddr, *metricsAddr)
			if err := srv.ListenAndServe(); err != http.ErrServerClosed {
				log.Printf("legosdn: metrics server: %v", err)
			}
		}()
	}

	names := strings.Split(*appList, ",")
	for i, name := range names {
		name = strings.TrimSpace(name)
		if i == 0 && *poison > 0 {
			// The first app carries the deterministic bug.
			p := uint16(*poison)
			inner := name
			stack.AddApp(func() controller.App { return newPoisoned(inner, p) })
			fmt.Printf("app %q hosted (%s) with injected bug: crashes on TCP dport %d\n", name, m, p)
			continue
		}
		name := name
		if err := stack.AddApp(func() controller.App { return mustApp(name) }); err != nil {
			log.Fatalf("legosdn: %v", err)
		}
		fmt.Printf("app %q hosted (%s)\n", name, m)
	}

	if err := stack.ConnectNetwork(n); err != nil {
		log.Fatalf("legosdn: %v", err)
	}
	fmt.Printf("network up: %d switches, %d hosts (%s)\n",
		len(n.Switches()), len(n.Hosts()), *topo)

	gen := workload.NewTrafficGen(n, 42)
	gen.SendFlows(*flows)
	settle(stack)
	fmt.Printf("sent %d flows; delivered frames per host:", *flows)
	for _, h := range n.Hosts() {
		fmt.Printf(" %s=%d", h.Name, h.ReceivedCount())
	}
	fmt.Println()

	if *poison > 0 {
		hosts := n.Hosts()
		src, dst := hosts[0], hosts[1%len(hosts)]
		// Flush flow tables (as idle timeouts eventually would) so the
		// poisoned packet punts to the controller instead of matching an
		// installed rule.
		for _, sw := range n.Switches() {
			sw.Table().Apply(&openflow.FlowMod{
				Match: openflow.MatchAll(), Command: openflow.FlowModDelete,
				BufferID: openflow.BufferIDNone, OutPort: openflow.PortNone,
			})
		}
		fmt.Printf("\ninjecting poisoned packet %s -> %s:%d ...\n", src.Name, dst.Name, *poison)
		n.SendFromHost(src.Name, netsim.TCPFrame(src, dst, 40000, uint16(*poison), nil))
		settle(stack)

		switch {
		case stack.Controller.Crashed():
			fmt.Println("RESULT: controller CRASHED — fate sharing took the whole control plane down")
		case stack.Controller.AppDisabled(names[0]):
			fmt.Printf("RESULT: controller survived; app %q is quarantined (no recovery in this mode)\n", names[0])
		default:
			fmt.Printf("RESULT: controller survived and app %q recovered\n", names[0])
			if stack.CrashPad != nil {
				fmt.Printf("  crash-pad: crashes=%d recoveries=%d ignored=%d\n",
					stack.CrashPad.CrashesSeen.Load(), stack.CrashPad.Recoveries.Load(),
					stack.CrashPad.IgnoredEvents.Load())
			}
		}

		fmt.Printf("\npost-failure traffic (%d flows):\n", *flows)
		before := delivered(n)
		gen.SendFlows(*flows)
		settle(stack)
		fmt.Printf("  delivered %d frames after the failure\n", delivered(n)-before)
	}

	fmt.Println("\nfinal flow-table sizes:")
	for _, sw := range n.Switches() {
		fmt.Printf("  s%d: %d entries, %d packet-ins, %d flow-mods\n",
			sw.DPID, sw.Table().Len(), sw.PacketIns.Load(), sw.FlowModsRx.Load())
	}
}

func settle(stack *core.Stack) {
	last := stack.Controller.Processed.Load()
	lastChange := time.Now()
	for time.Since(lastChange) < 50*time.Millisecond {
		time.Sleep(5 * time.Millisecond)
		if cur := stack.Controller.Processed.Load(); cur != last {
			last, lastChange = cur, time.Now()
		}
		if stack.Controller.Crashed() {
			return
		}
	}
}

func delivered(n *netsim.Network) int {
	total := 0
	for _, h := range n.Hosts() {
		total += h.ReceivedCount()
	}
	return total
}

func parseMode(s string) (core.Mode, error) {
	switch strings.ToLower(s) {
	case "monolithic":
		return core.ModeMonolithic, nil
	case "isolated":
		return core.ModeIsolated, nil
	case "legosdn":
		return core.ModeLegoSDN, nil
	default:
		return 0, fmt.Errorf("unknown mode %q", s)
	}
}

func buildTopo(s string) (*netsim.Network, error) {
	kind, arg, _ := strings.Cut(s, ":")
	atoi := func(v string, def int) int {
		if n, err := strconv.Atoi(v); err == nil {
			return n
		}
		return def
	}
	switch kind {
	case "single":
		return netsim.Single(atoi(arg, 4), nil), nil
	case "linear":
		return netsim.Linear(atoi(arg, 3), nil), nil
	case "ring":
		return netsim.Ring(atoi(arg, 4), nil), nil
	case "tree":
		d, f, _ := strings.Cut(arg, ",")
		return netsim.Tree(atoi(d, 3), atoi(f, 2), nil), nil
	case "fattree":
		return netsim.FatTree(atoi(arg, 4), nil), nil
	default:
		return nil, fmt.Errorf("unknown topology %q", s)
	}
}

func mustApp(name string) controller.App {
	app, err := apps.New(name)
	if err != nil {
		log.Fatalf("legosdn: %v", err)
		os.Exit(1)
	}
	return app
}

// poisoned wraps a registry app with a crash on one TCP dport.
type poisoned struct {
	inner  controller.App
	poison uint16
}

func newPoisoned(name string, port uint16) controller.App {
	return &poisoned{inner: mustApp(name), poison: port}
}

func (p *poisoned) Name() string                          { return p.inner.Name() }
func (p *poisoned) Subscriptions() []controller.EventKind { return p.inner.Subscriptions() }
func (p *poisoned) HandleEvent(ctx controller.Context, ev controller.Event) error {
	if pin, ok := ev.Message.(*openflow.PacketIn); ok {
		if f, err := netsim.ParseFrame(pin.Data); err == nil && f.TpDst == p.poison {
			panic(fmt.Sprintf("injected bug: cannot handle traffic to port %d", p.poison))
		}
	}
	return p.inner.HandleEvent(ctx, ev)
}
func (p *poisoned) Snapshot() ([]byte, error) {
	if s, ok := p.inner.(controller.Snapshotter); ok {
		return s.Snapshot()
	}
	return nil, fmt.Errorf("%q does not snapshot", p.Name())
}
func (p *poisoned) Restore(b []byte) error {
	if s, ok := p.inner.(controller.Snapshotter); ok {
		return s.Restore(b)
	}
	return fmt.Errorf("%q does not snapshot", p.Name())
}
