// Command legosdn-stub hosts one SDN-App in its own OS process, bridged
// to an AppVisor proxy over UDP — the stand-alone stub deployment from
// §4.1 of the LegoSDN paper. The proxy launches this binary via
// appvisor.SubprocessFactory; it can also be run by hand against a
// proxy address printed by the controller.
//
// Usage:
//
//	legosdn-stub -proxy 127.0.0.1:45678 -app learning-switch
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"legosdn/internal/apps"
	"legosdn/internal/appvisor"
	"legosdn/internal/trace"
)

func main() {
	proxyAddr := flag.String("proxy", "", "UDP address of the AppVisor proxy (required)")
	appName := flag.String("app", "learning-switch",
		fmt.Sprintf("app to host, one of: %s", strings.Join(apps.Names(), ", ")))
	heartbeat := flag.Duration("heartbeat", 50*time.Millisecond, "heartbeat interval")
	debugAddr := flag.String("debug-addr", "", "serve /debug/traces and pprof on this address")
	flag.Parse()

	if *proxyAddr == "" {
		flag.Usage()
		os.Exit(2)
	}
	app, err := apps.New(*appName)
	if err != nil {
		log.Fatalf("legosdn-stub: %v", err)
	}
	// The stub always samples at 100%: the root decision was already
	// made controller-side, and StartSpan only records events whose
	// wire header carries a trace context.
	tracer := trace.New(trace.Options{SampleRate: 1})
	if *debugAddr != "" {
		go func() {
			srv := &http.Server{Addr: *debugAddr, Handler: trace.NewDebugMux(tracer, nil)}
			if err := srv.ListenAndServe(); err != http.ErrServerClosed {
				log.Printf("legosdn-stub: debug server: %v", err)
			}
		}()
	}
	stub, err := appvisor.StartStub(app, *proxyAddr, appvisor.StubOptions{
		HeartbeatInterval: *heartbeat,
		Tracer:            tracer,
	})
	if err != nil {
		log.Fatalf("legosdn-stub: %v", err)
	}
	log.Printf("legosdn-stub: hosting %q, proxy %s", *appName, *proxyAddr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	tick := time.NewTicker(100 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-sig:
			stub.Kill()
			return
		case <-tick.C:
			if !stub.Alive() {
				// The app crashed (the wrapper already reported it) or
				// the proxy shut us down: exit like a dead process should.
				os.Exit(1)
			}
		}
	}
}
